"""Multi-process replica set: N servers, one port, self-healing.

One :class:`~repro.serving.http.InfluenceHTTPServer` is a single process
whose throughput ceiling is the GIL plus one accept loop.  This module
runs N of them as worker processes behind one public port, with the
router parent doing only supervision — no request ever passes through it,
so the data plane scales with workers while the control plane stays tiny
and dependency-free.

Two dispatch modes, picked automatically:

* **SO_REUSEPORT** (Linux, modern BSDs) — every worker binds the same
  ``(host, port)`` with ``SO_REUSEPORT`` and the *kernel* balances new
  connections across their accept queues.  Zero parent involvement per
  connection.
* **Pre-fork shared socket** (fallback) — the parent binds and listens
  once, workers inherit the listening socket across ``fork`` and all
  accept from it; the kernel wakes one accepter per connection.

Supervision: each worker heartbeats over a pipe; the monitor thread
detects a dead process (crash, OOM kill) or a stale heartbeat (hung
worker) and respawns it, subject to a total **restart budget** — a
crash-looping artifact fails the whole set loudly instead of flapping
forever.  In-flight requests on surviving replicas are untouched by a
peer's death: each worker owns its connections outright.

Workers are built by a caller-supplied zero-argument ``factory`` that
returns ``(service, registry)``; with the ``fork`` start method the
factory may close over in-memory artifacts and graphs — nothing is
pickled.
"""

from __future__ import annotations

import multiprocessing
import signal
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import TrainingError
from repro.obs import Observability, ensure_obs
from repro.serving.http import InfluenceHTTPServer

__all__ = ["ReplicaConfig", "ReplicaSet"]


@dataclass(frozen=True)
class ReplicaConfig:
    """Shape and self-healing policy of a replica set.

    Attributes:
        replicas: worker processes to run.
        host / port: public address; ``port=0`` picks a free port.
        mode: ``"auto"`` (SO_REUSEPORT when available, else shared
            socket), ``"reuseport"``, or ``"shared"``.
        heartbeat_interval: seconds between worker heartbeats.
        heartbeat_timeout: heartbeat silence after which a live process
            is declared hung and replaced.
        restart_budget: total respawns allowed across the set's lifetime;
            exceeding it marks the set degraded (dead workers stay dead).
        ready_timeout: seconds to wait for a worker to report ready.
    """

    replicas: int = 2
    host: str = "127.0.0.1"
    port: int = 0
    mode: str = "auto"
    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 5.0
    restart_budget: int = 5
    ready_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise TrainingError(f"replicas must be >= 1, got {self.replicas}")
        if self.mode not in ("auto", "reuseport", "shared"):
            raise TrainingError(
                f"mode must be auto/reuseport/shared, got {self.mode!r}"
            )
        if self.heartbeat_interval <= 0 or self.heartbeat_timeout <= 0:
            raise TrainingError("heartbeat interval/timeout must be positive")
        if self.restart_budget < 0:
            raise TrainingError(
                f"restart_budget must be >= 0, got {self.restart_budget}"
            )


def _worker_main(
    factory: Callable[[], tuple[Any, Any]],
    host: str,
    port: int,
    shared_socket: socket.socket | None,
    conn,
    heartbeat_interval: float,
) -> None:
    """Worker process body: build the service, serve, heartbeat."""
    service, registry = factory()
    if shared_socket is not None:
        server = InfluenceHTTPServer(
            (host, port), service, registry, sock=shared_socket
        )
    else:
        server = InfluenceHTTPServer(
            (host, port), service, registry, reuse_port=True
        )

    def _terminate(signum, frame):  # noqa: ARG001 - signal API
        # shutdown() must not run on the serve_forever thread (it blocks
        # on the loop exiting), so hand it to a helper thread.
        threading.Thread(target=server.shutdown_gracefully, daemon=True).start()

    signal.signal(signal.SIGTERM, _terminate)

    def _heartbeat() -> None:
        while True:
            try:
                conn.send(("heartbeat", time.monotonic()))
            except (BrokenPipeError, OSError):
                return  # parent is gone; serve until killed
            time.sleep(heartbeat_interval)

    conn.send(("ready", server.server_address[1]))
    threading.Thread(target=_heartbeat, daemon=True).start()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()


class _Replica:
    """Parent-side bookkeeping for one worker slot."""

    __slots__ = ("index", "process", "conn", "last_heartbeat", "restarts")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.conn = None
        self.last_heartbeat = 0.0
        self.restarts = 0


class ReplicaSet:
    """Spawns, supervises, and respawns N HTTP server workers.

    Args:
        factory: zero-argument callable, run *inside each worker*, that
            returns ``(InfluenceService, ModelRegistry | None)``.
        config: replica count, dispatch mode, and self-healing policy.
        obs: parent-side observability; respawns and failures are counted
            under ``serve.replica.*``.
    """

    def __init__(
        self,
        factory: Callable[[], tuple[Any, Any]],
        config: ReplicaConfig | None = None,
        *,
        obs: Observability | None = None,
    ) -> None:
        self.factory = factory
        self.config = config or ReplicaConfig()
        self.obs = ensure_obs(obs)
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError as error:  # pragma: no cover - non-POSIX only
            raise TrainingError(
                "replica sets need the 'fork' start method (POSIX only)"
            ) from error
        self.mode = self._resolve_mode(self.config.mode)
        self.port: int | None = None
        self._shared_socket: socket.socket | None = None
        self._replicas: list[_Replica] = []
        self._lock = threading.Lock()
        self._monitor: threading.Thread | None = None
        self._stopping = threading.Event()
        self.total_restarts = 0
        #: set when the restart budget is exhausted with a worker down.
        self.degraded = False

    @staticmethod
    def _resolve_mode(mode: str) -> str:
        if mode == "auto":
            return "reuseport" if hasattr(socket, "SO_REUSEPORT") else "shared"
        return mode

    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        if self.port is None:
            raise TrainingError("replica set has not been started")
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "ReplicaSet":
        """Bind the public port, spawn every worker, await readiness."""
        if self._replicas:
            raise TrainingError("replica set already started")
        if self.mode == "shared":
            self._shared_socket = socket.create_server(
                (self.config.host, self.config.port), backlog=128, reuse_port=False
            )
            self.port = self._shared_socket.getsockname()[1]
        else:
            self.port = self._resolve_reuseport_port()
        for index in range(self.config.replicas):
            replica = _Replica(index)
            self._spawn(replica)
            self._replicas.append(replica)
        for replica in self._replicas:
            self._await_ready(replica)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-replica-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def _resolve_reuseport_port(self) -> int:
        if self.config.port:
            return self.config.port
        # Probe an ephemeral port, then hand it to the workers.  The probe
        # socket must close before the workers bind (a bound-but-idle
        # SO_REUSEPORT member would soak up connections), which leaves a
        # small window where another process could take the port — fine
        # for a dev/bench router; production deploys pass a fixed port.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        probe.bind((self.config.host, 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def _spawn(self, replica: _Replica) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                self.factory,
                self.config.host,
                self.port,
                self._shared_socket,
                child_conn,
                self.config.heartbeat_interval,
            ),
            name=f"repro-replica-{replica.index}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # parent keeps only the read end
        replica.process = process
        replica.conn = parent_conn
        replica.last_heartbeat = time.monotonic()

    def _await_ready(self, replica: _Replica) -> None:
        deadline = time.monotonic() + self.config.ready_timeout
        while time.monotonic() < deadline:
            if replica.conn.poll(0.05):
                kind, value = replica.conn.recv()
                if kind == "ready":
                    if self.port in (None, 0):
                        self.port = int(value)
                    replica.last_heartbeat = time.monotonic()
                    return
            if not replica.process.is_alive():
                raise TrainingError(
                    f"replica {replica.index} died during startup "
                    f"(exit code {replica.process.exitcode})"
                )
        raise TrainingError(
            f"replica {replica.index} not ready within "
            f"{self.config.ready_timeout}s"
        )

    # ------------------------------------------------------------------ #
    def _monitor_loop(self) -> None:
        interval = self.config.heartbeat_interval
        while not self._stopping.wait(interval):
            for replica in self._replicas:
                self._check(replica)

    def _check(self, replica: _Replica) -> None:
        now = time.monotonic()
        try:
            while replica.conn.poll(0):
                kind, value = replica.conn.recv()
                if kind == "heartbeat":
                    replica.last_heartbeat = now
        except (EOFError, OSError):
            pass  # pipe closed — the liveness checks below decide
        crashed = not replica.process.is_alive()
        hung = (now - replica.last_heartbeat) > self.config.heartbeat_timeout
        if not crashed and not hung:
            return
        reason = "crashed" if crashed else "hung"
        self.obs.logger.error(
            "replica_down",
            index=replica.index,
            reason=reason,
            exitcode=replica.process.exitcode,
        )
        self.obs.counter(f"serve.replica.{reason}").inc()
        with self._lock:
            if self._stopping.is_set():
                return
            if self.total_restarts >= self.config.restart_budget:
                self.degraded = True
                self.obs.counter("serve.replica.budget_exhausted").inc()
                return
            self.total_restarts += 1
            replica.restarts += 1
        if not crashed:
            replica.process.terminate()
            replica.process.join(timeout=2.0)
            if replica.process.is_alive():  # pragma: no cover - stuck in C
                replica.process.kill()
                replica.process.join(timeout=2.0)
        replica.conn.close()
        self._spawn(replica)
        try:
            self._await_ready(replica)
        except TrainingError as error:
            self.obs.logger.error(
                "replica_respawn_failed", index=replica.index, error=str(error)
            )

    # ------------------------------------------------------------------ #
    def kill_replica(self, index: int) -> int:
        """Hard-kill one worker (chaos testing); returns its old pid."""
        replica = self._replicas[index]
        pid = replica.process.pid
        replica.process.kill()
        replica.process.join(timeout=5.0)
        return pid

    def stats(self) -> dict[str, Any]:
        """JSON-safe supervision state (router-level, not per-request)."""
        with self._lock:
            return {
                "mode": self.mode,
                "port": self.port,
                "degraded": self.degraded,
                "total_restarts": self.total_restarts,
                "replicas": [
                    {
                        "index": replica.index,
                        "pid": replica.process.pid if replica.process else None,
                        "alive": bool(replica.process and replica.process.is_alive()),
                        "restarts": replica.restarts,
                        "heartbeat_age_seconds": (
                            time.monotonic() - replica.last_heartbeat
                        ),
                    }
                    for replica in self._replicas
                ],
            }

    def stop(self) -> None:
        """SIGTERM every worker (graceful drain), then reap."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5.0)
        for replica in self._replicas:
            if replica.process is not None and replica.process.is_alive():
                replica.process.terminate()
        for replica in self._replicas:
            if replica.process is None:
                continue
            replica.process.join(timeout=5.0)
            if replica.process.is_alive():  # pragma: no cover - stuck worker
                replica.process.kill()
                replica.process.join(timeout=2.0)
            if replica.conn is not None:
                replica.conn.close()
        if self._shared_socket is not None:
            self._shared_socket.close()
            self._shared_socket = None

    def __enter__(self) -> "ReplicaSet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
