"""Versioned on-disk model artifacts and the serving registry.

An *artifact* is the publishable unit of a training run: the trained GNN
weights, the :class:`~repro.gnn.models.GNNConfig` needed to rebuild the
exact architecture, the frozen pipeline configuration it was trained
under, and the final privacy provenance (ε, δ, σ, composition steps).
Bundling the configs fixes a real gap: saved weights alone do not pin the
architecture or the training-time privacy claim, so publishing used to
mean hand-reassembling three objects that could silently drift apart.

Artifacts use the same framing as training checkpoints
(:mod:`repro.core.checkpoint`): an atomic temp-file + fsync + rename
write, prefixed with a ``sha256``/``size`` header line, so a crash never
corrupts a published model and truncated or bit-flipped files are
rejected with a clean :class:`~repro.errors.TrainingError`.

A :class:`ModelRegistry` is a directory of named models, each a directory
of numbered versions::

    registry/
      default/
        v000001.npz
        v000002.npz
      lastfm-eps4/
        v000001.npz

``publish`` allocates the next version atomically; ``load`` returns any
version (latest by default).  Inference on a loaded artifact spends no
additional privacy budget — the (ε, δ) it carries is the total cost of
everything the model will ever answer.
"""

from __future__ import annotations

import io
import json
import math
import os
import re
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.checkpoint import read_checksummed, write_checksummed
from repro.errors import TrainingError
from repro.gnn.models import GNN, GNNConfig

__all__ = [
    "ModelArtifact",
    "ModelRegistry",
    "PrivacyProvenance",
    "load_artifact",
    "save_artifact",
]

_ARTIFACT_MAGIC = b"REPRO-ARTIFACT-v1"
_ARTIFACT_HEADER_KEY = "__repro_artifact__"
_ARTIFACT_KIND = "serving artifact"
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_VERSION_PATTERN = re.compile(r"^v(\d{6})\.npz$")


@dataclass(frozen=True)
class PrivacyProvenance:
    """The privacy claim a served model carries with every response.

    Attributes:
        epsilon: achieved ε of the training run (``inf`` for the
            non-private reference).
        delta: the δ the run was accounted at.
        sigma: the calibrated noise multiplier (0 when non-private).
        steps: composition steps the accountant recorded (training
            iterations).
        max_occurrences: the occurrence bound ``N_g`` used for sensitivity.
        num_subgraphs: training container size ``m``.
        clip_bound: per-subgraph clip norm ``C`` (``None`` non-private).
    """

    epsilon: float
    delta: float
    sigma: float
    steps: int
    max_occurrences: int
    num_subgraphs: int
    clip_bound: float | None = None

    def to_json(self) -> dict[str, Any]:
        """JSON-safe dict; ε = ∞ is encoded as ``None``."""
        return {
            "epsilon": float(self.epsilon) if math.isfinite(self.epsilon) else None,
            "delta": float(self.delta),
            "sigma": float(self.sigma),
            "steps": int(self.steps),
            "max_occurrences": int(self.max_occurrences),
            "num_subgraphs": int(self.num_subgraphs),
            "clip_bound": None if self.clip_bound is None else float(self.clip_bound),
        }

    @classmethod
    def from_json(cls, payload: dict[str, Any]) -> "PrivacyProvenance":
        return cls(
            epsilon=float("inf") if payload["epsilon"] is None else float(payload["epsilon"]),
            delta=float(payload["delta"]),
            sigma=float(payload["sigma"]),
            steps=int(payload["steps"]),
            max_occurrences=int(payload["max_occurrences"]),
            num_subgraphs=int(payload["num_subgraphs"]),
            clip_bound=(
                None if payload.get("clip_bound") is None else float(payload["clip_bound"])
            ),
        )


@dataclass
class ModelArtifact:
    """A publishable trained model: weights + configs + privacy claim.

    Attributes:
        model: the trained GNN (its ``config`` is the architecture record).
        privacy: the training run's final privacy accounting.
        pipeline_config: JSON-safe snapshot of the pipeline configuration
            the model was trained under (hyperparameters, sampling knobs).
        method: pipeline name (``PrivIM*``, ``PrivIM``, …).
        metadata: free-form JSON-safe annotations (dataset, operator tags).
    """

    model: GNN
    privacy: PrivacyProvenance
    pipeline_config: dict[str, Any] = field(default_factory=dict)
    method: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def gnn_config(self) -> GNNConfig:
        """The architecture the weights belong to."""
        return self.model.config

    def describe(self) -> dict[str, Any]:
        """JSON-safe summary (what ``/v1/models`` reports per version)."""
        config = self.model.config
        return {
            "method": self.method,
            "model": config.model,
            "in_features": config.in_features,
            "hidden_features": config.hidden_features,
            "num_layers": config.num_layers,
            "privacy": self.privacy.to_json(),
            "metadata": dict(self.metadata),
        }


def _normalize_artifact_path(path: str | os.PathLike) -> str:
    text = os.fspath(path)
    if not text.endswith(".npz"):
        text += ".npz"
    return text


def save_artifact(artifact: ModelArtifact, path: str | os.PathLike) -> str:
    """Atomically write ``artifact`` to ``path``; returns the path written."""
    config = artifact.model.config
    header = {
        "version": 1,
        "gnn": {
            "model": config.model,
            "in_features": config.in_features,
            "hidden_features": config.hidden_features,
            "num_layers": config.num_layers,
            "attention_heads": config.attention_heads,
        },
        "privacy": artifact.privacy.to_json(),
        "pipeline_config": artifact.pipeline_config,
        "method": artifact.method,
        "metadata": artifact.metadata,
    }
    payload: dict[str, np.ndarray] = {
        f"model.{name}": np.asarray(value)
        for name, value in artifact.model.state_dict().items()
    }
    try:
        header_bytes = json.dumps(header).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise TrainingError(
            f"artifact metadata/pipeline_config must be JSON-safe: {error}"
        ) from error
    payload[_ARTIFACT_HEADER_KEY] = np.frombuffer(header_bytes, dtype=np.uint8)

    buffer = io.BytesIO()
    np.savez(buffer, **payload)
    return write_checksummed(
        _normalize_artifact_path(path), _ARTIFACT_MAGIC, buffer.getvalue()
    )


def load_artifact(path: str | os.PathLike) -> ModelArtifact:
    """Read, verify, and rebuild an artifact written by :func:`save_artifact`.

    Raises:
        TrainingError: missing file, wrong magic, truncation, checksum
            failure, or an undecodable payload.
    """
    path = _normalize_artifact_path(path)
    data = read_checksummed(path, _ARTIFACT_MAGIC, kind=_ARTIFACT_KIND)
    try:
        with np.load(io.BytesIO(data)) as archive:
            header = json.loads(
                bytes(archive[_ARTIFACT_HEADER_KEY].tobytes()).decode("utf-8")
            )
            state = {
                key[len("model."):]: archive[key]
                for key in archive.files
                if key.startswith("model.")
            }
    except TrainingError:
        raise
    except Exception as error:
        raise TrainingError(f"{path} could not be decoded: {error}") from error

    gnn = header["gnn"]
    model = GNN(
        GNNConfig(
            model=gnn["model"],
            in_features=int(gnn["in_features"]),
            hidden_features=int(gnn["hidden_features"]),
            num_layers=int(gnn["num_layers"]),
            attention_heads=int(gnn.get("attention_heads", 1)),
            rng=0,
        )
    )
    model.load_state_dict(state)
    return ModelArtifact(
        model=model,
        privacy=PrivacyProvenance.from_json(header["privacy"]),
        pipeline_config=dict(header.get("pipeline_config", {})),
        method=str(header.get("method", "")),
        metadata=dict(header.get("metadata", {})),
    )


class ModelRegistry:
    """A directory of named, versioned serving artifacts.

    Args:
        root: registry directory (created on first publish).
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.fspath(root)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_name(name: str) -> str:
        if not _NAME_PATTERN.match(name):
            raise TrainingError(
                f"model name must match {_NAME_PATTERN.pattern}, got {name!r}"
            )
        return name

    def _model_dir(self, name: str) -> str:
        return os.path.join(self.root, self._check_name(name))

    def artifact_path(self, name: str, version: int) -> str:
        """Path of one published version (which may or may not exist)."""
        if version < 1:
            raise TrainingError(f"versions start at 1, got {version}")
        return os.path.join(self._model_dir(name), f"v{version:06d}.npz")

    # ------------------------------------------------------------------ #
    def list_models(self) -> list[str]:
        """Sorted names of every model with at least one version."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            entry
            for entry in os.listdir(self.root)
            if _NAME_PATTERN.match(entry) and self.list_versions(entry)
        )

    def list_versions(self, name: str) -> list[int]:
        """Published versions of ``name`` in ascending numeric order."""
        directory = self._model_dir(name)
        if not os.path.isdir(directory):
            return []
        versions = []
        for entry in os.listdir(directory):
            match = _VERSION_PATTERN.match(entry)
            if match:
                versions.append(int(match.group(1)))
        return sorted(versions)

    def latest(self, name: str = "default") -> int:
        """The newest published version number of ``name``."""
        versions = self.list_versions(name)
        if not versions:
            raise TrainingError(f"no published versions of {name!r} in {self.root}")
        return versions[-1]

    # ------------------------------------------------------------------ #
    def publish(self, artifact: ModelArtifact, name: str = "default") -> int:
        """Write ``artifact`` as the next version of ``name``; returns it.

        The write is atomic (checksummed temp file + rename), so a crash
        mid-publish never leaves a half-written version, and readers only
        ever observe complete artifacts.
        """
        directory = self._model_dir(name)
        os.makedirs(directory, exist_ok=True)
        versions = self.list_versions(name)
        version = (versions[-1] + 1) if versions else 1
        save_artifact(artifact, self.artifact_path(name, version))
        return version

    def load(self, name: str = "default", version: int | None = None) -> ModelArtifact:
        """Load one version of ``name`` (latest when ``version`` is None)."""
        if version is None:
            version = self.latest(name)
        path = self.artifact_path(name, version)
        if not os.path.exists(path):
            raise TrainingError(
                f"model {name!r} has no version {version} in {self.root} "
                f"(published: {self.list_versions(name) or 'none'})"
            )
        return load_artifact(path)

    def describe(self) -> dict[str, Any]:
        """JSON-safe listing of every model/version (``/v1/models``)."""
        listing: dict[str, Any] = {}
        for name in self.list_models():
            versions = {}
            for version in self.list_versions(name):
                try:
                    versions[str(version)] = self.load(name, version).describe()
                except TrainingError as error:
                    versions[str(version)] = {"error": str(error)}
            listing[name] = versions
        return listing
