"""Influence-scoring inference service.

The paper's deployment story (Section III-C) is an inference workload:
score every node with ``φ(h_u)``, take the top-``k`` seeds.  Post-hoc
inference on a DP-trained model spends **no additional ε** — the privacy
budget was consumed during training and the released weights are the
(ε, δ)-DP output — so serving is privacy-free by construction.

Four dependency-free layers:

* :mod:`repro.serving.registry` — versioned on-disk artifacts bundling the
  trained weights, :class:`~repro.gnn.models.GNNConfig`, the frozen
  pipeline configuration, and the final privacy provenance (ε, δ, σ,
  steps), with the same atomic-write + SHA-256 checksum discipline as
  training checkpoints.
* :mod:`repro.serving.engine` — loads an artifact once and answers
  ``score_nodes`` / ``top_k_seeds`` / ``estimate_spread`` with cached
  per-graph degree features (keyed by a content fingerprint), an LRU
  result cache, and single-flight coalescing of concurrent requests.
* :mod:`repro.serving.service` — admission control (bounded queue,
  per-request deadlines, 503/504 degradation instead of hangs) plus
  per-request metrics.
* :mod:`repro.serving.http` — a threaded stdlib JSON API
  (``/healthz``, ``/metrics``, ``/v1/score``, ``/v1/seeds``,
  ``/v1/spread``, ``/v1/models``).

See ``docs/serving.md`` for the artifact format and endpoint reference.
"""

from __future__ import annotations

from repro.serving.engine import ScoringEngine, graph_fingerprint
from repro.serving.registry import (
    ModelArtifact,
    ModelRegistry,
    PrivacyProvenance,
    load_artifact,
    save_artifact,
)
from repro.serving.service import (
    BadRequest,
    DeadlineExceeded,
    InfluenceService,
    ServiceConfig,
    ServiceUnavailable,
)

__all__ = [
    "BadRequest",
    "DeadlineExceeded",
    "InfluenceService",
    "ModelArtifact",
    "ModelRegistry",
    "PrivacyProvenance",
    "ScoringEngine",
    "ServiceConfig",
    "ServiceUnavailable",
    "graph_fingerprint",
    "load_artifact",
    "save_artifact",
]
