"""Influence-scoring inference service.

The paper's deployment story (Section III-C) is an inference workload:
score every node with ``φ(h_u)``, take the top-``k`` seeds.  Post-hoc
inference on a DP-trained model spends **no additional ε** — the privacy
budget was consumed during training and the released weights are the
(ε, δ)-DP output — so serving is privacy-free by construction.

Six dependency-free layers:

* :mod:`repro.serving.registry` — versioned on-disk artifacts bundling the
  trained weights, :class:`~repro.gnn.models.GNNConfig`, the frozen
  pipeline configuration, and the final privacy provenance (ε, δ, σ,
  steps), with the same atomic-write + SHA-256 checksum discipline as
  training checkpoints.
* :mod:`repro.serving.engine` — loads an artifact once and answers
  ``score_nodes`` / ``top_k_seeds`` / ``estimate_spread`` with cached
  per-graph degree features (keyed by a content fingerprint), an LRU
  result cache, single-flight coalescing of concurrent requests, and
  selective per-fingerprint invalidation for live graph mutations.
* :mod:`repro.serving.batch` — cross-request micro-batching: distinct
  cold score/seeds requests arriving within a small window are fused
  into one forward pass, bit-identical to the unbatched path.
* :mod:`repro.serving.service` — admission control (bounded queue,
  per-request deadlines, 503/504 degradation instead of hangs),
  live graph mutations with atomic fingerprint swap, plus per-request
  metrics.
* :mod:`repro.serving.http` — a threaded stdlib JSON API
  (``/healthz``, ``/metrics``, ``/v1/score``, ``/v1/seeds``,
  ``/v1/spread``, ``/v1/models``, ``/v1/graph/edges``).
* :mod:`repro.serving.replica` — a multi-process replica set behind a
  stdlib router: N worker processes each running the HTTP server, with
  health checks, crash detection, and respawn under a restart budget.

See ``docs/serving.md`` for the artifact format and endpoint reference.
"""

from __future__ import annotations

from repro.serving.batch import MicroBatcher
from repro.serving.engine import ScoringEngine, graph_fingerprint
from repro.serving.http import LengthRequired, PayloadTooLarge
from repro.serving.registry import (
    ModelArtifact,
    ModelRegistry,
    PrivacyProvenance,
    load_artifact,
    save_artifact,
)
from repro.serving.replica import ReplicaConfig, ReplicaSet
from repro.serving.service import (
    BadRequest,
    DeadlineExceeded,
    InfluenceService,
    ServiceConfig,
    ServiceUnavailable,
)

__all__ = [
    "BadRequest",
    "DeadlineExceeded",
    "InfluenceService",
    "LengthRequired",
    "MicroBatcher",
    "ModelArtifact",
    "ModelRegistry",
    "PayloadTooLarge",
    "PrivacyProvenance",
    "ReplicaConfig",
    "ReplicaSet",
    "ScoringEngine",
    "ServiceConfig",
    "ServiceUnavailable",
    "graph_fingerprint",
    "load_artifact",
    "save_artifact",
]
