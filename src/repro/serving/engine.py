"""The batched scoring engine: one loaded artifact, many cheap queries.

Three cost tiers, each cached:

* **Degree features** — O(|V|·d) to build, keyed by a content fingerprint
  of the graph so a changed graph (new nodes, new edges, new weights)
  invalidates automatically while repeated queries against the same graph
  pay featurisation exactly once.
* **Score vectors** — one GNN forward pass per (model, graph).  Concurrent
  requests for an uncached vector are *coalesced*: the first thread
  computes, the rest wait on its result — the micro-batching that turns a
  32-request burst into a single forward pass.
* **Request results** — top-k seed sets and spread estimates land in a
  bounded LRU keyed by the full request tuple, so hot queries (the same
  ``k`` against the same graph) are answered without touching the model.

Everything is thread-safe: a single lock guards cache bookkeeping, and
the numeric work (featurisation, forward pass, Monte-Carlo) runs outside
it.  Inference consumes no privacy budget — the engine only ever *reads*
the (ε, δ)-DP weights — so the artifact's provenance is attached to
results unchanged.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Hashable, Iterable, Sequence

import numpy as np

from repro.core.seed_selection import score_nodes as _score_nodes
from repro.core.seed_selection import top_k_by_score
from repro.errors import TrainingError
from repro.gnn.features import degree_features
from repro.graphs.graph import Graph
from repro.im.spread import estimate_spread as _estimate_spread
from repro.obs import Observability, ensure_obs
from repro.serving.registry import ModelArtifact

__all__ = ["ScoringEngine", "graph_fingerprint", "DEFAULT_SPREAD_SEED"]

#: Engine-level default seed for served spread estimates, so identical
#: requests return identical numbers unless the caller asks otherwise.
DEFAULT_SPREAD_SEED = 0x51AB


def graph_fingerprint(graph: Graph) -> str:
    """Content hash of a graph (nodes, arcs, weights) for cache keying.

    Two graphs with equal structure and weights share a fingerprint;
    any change — one edge, one weight — produces a new one, which is what
    invalidates every per-graph cache entry in the engine.
    """
    sources, targets, weights = graph.edge_arrays()
    digest = hashlib.sha256()
    digest.update(int(graph.num_nodes).to_bytes(8, "little"))
    digest.update(np.ascontiguousarray(sources, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(targets, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(weights, dtype=np.float64).tobytes())
    return digest.hexdigest()


class _LRUCache:
    """Bounded ordered-dict LRU.  Callers hold the owning engine's lock."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise TrainingError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable) -> Any:
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def pop(self, key: Hashable) -> bool:
        """Drop ``key`` if present; returns whether an entry was removed."""
        return self._entries.pop(key, None) is not None

    def pop_where(self, predicate) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns count."""
        doomed = [key for key in self._entries if predicate(key)]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class ScoringEngine:
    """Serves influence queries for one published artifact.

    Args:
        artifact: the loaded model + provenance bundle.
        obs: optional observability bundle; cache hits/misses and coalesced
            requests are counted under ``serve.engine.*``.
        feature_cache_size: distinct graphs whose degree features stay
            resident.
        score_cache_size: distinct graphs whose full score vector stays
            resident.
        result_cache_size: completed request results (seed sets, spreads)
            kept for exact-match replay.
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        *,
        obs: Observability | None = None,
        feature_cache_size: int = 8,
        score_cache_size: int = 8,
        result_cache_size: int = 256,
    ) -> None:
        self.artifact = artifact
        self.model = artifact.model
        self.obs = ensure_obs(obs)
        self._lock = threading.Lock()
        self._features = _LRUCache(feature_cache_size)
        self._scores = _LRUCache(score_cache_size)
        self._results = _LRUCache(result_cache_size)
        #: key -> Event for score vectors currently being computed.
        self._inflight: dict[str, threading.Event] = {}
        #: how many requests were answered by waiting on another thread's
        #: forward pass instead of running their own.
        self.coalesced = 0
        #: GNN forward passes actually executed (the cost that matters —
        #: cache lookups may miss many times per single computation under
        #: contention, but only the single-flight leader ever pays this).
        self.forward_passes = 0

    # ------------------------------------------------------------------ #
    def fingerprint(self, graph: Graph) -> str:
        """Content fingerprint of ``graph`` (see :func:`graph_fingerprint`)."""
        return graph_fingerprint(graph)

    def features(self, graph: Graph, *, fingerprint: str | None = None) -> np.ndarray:
        """Degree features for ``graph``, cached by fingerprint."""
        key = fingerprint or self.fingerprint(graph)
        with self._lock:
            cached = self._features.get(key)
        if cached is not None:
            self.obs.counter("serve.engine.features.hits").inc()
            return cached
        self.obs.counter("serve.engine.features.misses").inc()
        computed = degree_features(graph, dim=self.model.config.in_features)
        with self._lock:
            self._features.put(key, computed)
        return computed

    def scores_cached(self, fingerprint: str) -> bool:
        """Whether the score vector for ``fingerprint`` is resident.

        A pure peek: no hit/miss accounting, no LRU reordering.  The
        micro-batcher uses it to route warm requests around the batching
        window.
        """
        with self._lock:
            return fingerprint in self._scores._entries

    def scores(self, graph: Graph, *, fingerprint: str | None = None) -> np.ndarray:
        """The full per-node score vector, cached and single-flighted.

        When several threads ask for the same uncached graph at once, one
        runs the forward pass and the rest block on its completion — the
        burst costs one GNN evaluation, not N.
        """
        key = fingerprint or self.fingerprint(graph)
        while True:
            with self._lock:
                cached = self._scores.get(key)
                if cached is not None:
                    self.obs.counter("serve.engine.scores.hits").inc()
                    return cached
                waiter = self._inflight.get(key)
                if waiter is None:
                    # This thread is the leader for the fingerprint.
                    event = threading.Event()
                    self._inflight[key] = event
                    break
                # A leader is already computing this vector: count the
                # coalesced wait *under the lock* — the bare += is a
                # read-modify-write that loses increments when several
                # waiters race, silently under-reporting coalescing.
                self.coalesced += 1
            self.obs.counter("serve.engine.scores.coalesced").inc()
            waiter.wait()
        try:
            self.obs.counter("serve.engine.scores.misses").inc()
            features = self.features(graph, fingerprint=key)
            with self._lock:
                self.forward_passes += 1
            with self.obs.span("serve.engine.forward"):
                scores = _score_nodes(self.model, graph, features=features)
            with self._lock:
                self._scores.put(key, scores)
            return scores
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            event.set()

    # ------------------------------------------------------------------ #
    def _cached_result(self, key: Hashable | None, compute) -> Any:
        """Run ``compute`` through the result LRU (skip when key is None)."""
        if key is not None:
            with self._lock:
                cached = self._results.get(key)
            if cached is not None:
                self.obs.counter("serve.engine.results.hits").inc()
                return cached
            self.obs.counter("serve.engine.results.misses").inc()
        value = compute()
        if key is not None:
            with self._lock:
                self._results.put(key, value)
        return value

    @staticmethod
    def _rng_key(rng: int | np.random.Generator | None) -> Hashable | None:
        """Hashable cache component for ``rng``; ``None`` = uncacheable."""
        if rng is None:
            return "default"
        if isinstance(rng, (int, np.integer)):
            return int(rng)
        return None  # generator instances have hidden state; never cache

    def score_nodes(
        self,
        graph: Graph,
        nodes: Sequence[int] | None = None,
        *,
        fingerprint: str | None = None,
    ) -> np.ndarray:
        """Scores for ``nodes`` (all nodes when ``None``).

        Arbitrary node subsets are served as slices of the one cached full
        vector, so heterogeneous concurrent queries still share a single
        forward pass.
        """
        scores = self.scores(graph, fingerprint=fingerprint)
        if nodes is None:
            return scores
        index = np.asarray(list(nodes), dtype=np.int64)
        if index.size and (index.min() < 0 or index.max() >= graph.num_nodes):
            raise TrainingError(
                f"node ids must be in [0, {graph.num_nodes}), got "
                f"[{index.min()}, {index.max()}]"
            )
        return scores[index]

    def top_k_seeds(
        self,
        graph: Graph,
        k: int,
        *,
        rng: int | np.random.Generator | None = None,
        fingerprint: str | None = None,
    ) -> list[int]:
        """Top-``k`` seed set — identical to the pipeline's seed rule.

        Uses the exact :func:`repro.core.seed_selection.top_k_by_score`
        tie-break, so a published model serves the same seeds its training
        pipeline would have selected.
        """
        key_fp = fingerprint or self.fingerprint(graph)
        rng_key = self._rng_key(rng)
        cache_key = None if rng_key is None else ("seeds", key_fp, int(k), rng_key)
        return self._cached_result(
            cache_key,
            lambda: top_k_by_score(self.scores(graph, fingerprint=key_fp), k, rng),
        )

    def estimate_spread(
        self,
        graph: Graph,
        seeds: Iterable[int],
        *,
        model: str = "ic",
        steps: int | None = 1,
        num_simulations: int = 100,
        rng: int | np.random.Generator | None = DEFAULT_SPREAD_SEED,
        fingerprint: str | None = None,
    ) -> float:
        """Influence spread of ``seeds`` under the chosen diffusion model.

        Defaults to :data:`DEFAULT_SPREAD_SEED` so repeated identical
        requests are bit-identical; integer seeds build a private
        generator per call, which keeps concurrent requests independent.
        """
        seed_tuple = tuple(int(node) for node in seeds)
        key_fp = fingerprint or self.fingerprint(graph)
        rng_key = self._rng_key(rng)
        cache_key = (
            None
            if rng_key is None
            else ("spread", key_fp, seed_tuple, model, steps, num_simulations, rng_key)
        )
        return self._cached_result(
            cache_key,
            lambda: float(
                _estimate_spread(
                    graph,
                    seed_tuple,
                    model=model,
                    steps=steps,
                    num_simulations=num_simulations,
                    rng=rng,
                )
            ),
        )

    # ------------------------------------------------------------------ #
    def invalidate(self, fingerprint: str) -> dict[str, int]:
        """Selective invalidation after a live graph mutation.

        Drops exactly the entries keyed by ``fingerprint`` — the degree
        feature rows, the score vector, and any request results whose key
        embeds that fingerprint — and nothing else, so warm results for
        other graphs survive an unrelated update.  Returns how many
        entries each tier lost (what the mutation endpoint reports).
        """
        with self._lock:
            dropped = {
                "features": int(self._features.pop(fingerprint)),
                "scores": int(self._scores.pop(fingerprint)),
                # Result keys are ("seeds"|"spread", fingerprint, ...).
                "results": self._results.pop_where(
                    lambda key: isinstance(key, tuple)
                    and len(key) > 1
                    and key[1] == fingerprint
                ),
            }
        self.obs.counter("serve.engine.invalidations").inc()
        return dropped

    def stats(self) -> dict[str, Any]:
        """JSON-safe cache and coalescing counters."""
        with self._lock:
            return {
                "features": self._features.stats(),
                "scores": self._scores.stats(),
                "results": self._results.stats(),
                "coalesced": self.coalesced,
                "forward_passes": self.forward_passes,
            }
