"""Request admission, deadlines, and the service-level API.

:class:`InfluenceService` sits between the HTTP front-end and the
scoring engine and enforces the capacity contract:

* **Bounded concurrency** — at most ``max_inflight`` requests execute at
  once; up to ``queue_limit`` more may wait for a slot.  Anything beyond
  that is rejected *immediately* with :class:`ServiceUnavailable`
  (HTTP 503 + ``Retry-After``) — saturation degrades to fast failures,
  never to unbounded queueing or a hang.
* **Per-request deadlines** — every request carries a deadline (its own
  ``deadline_ms`` or the service default).  A request that cannot get a
  slot in time, or whose work finishes past its deadline, is answered
  with :class:`DeadlineExceeded` (HTTP 504).  Work already computed still
  lands in the engine's caches, so a timed-out query warms the next one.
* **Provenance** — every successful response carries the served model's
  (ε, δ): inference is free, but the client always sees what the budget
  of the weights it is querying was.
* **Metrics** — per-operation counters and latency histograms
  (p50/p95 via the obs histogram reservoir), queue depth, and engine
  cache stats, all exposed by :meth:`metrics` for ``/metrics``.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import GraphError, TrainingError
from repro.graphs.graph import Graph
from repro.obs import Observability, ensure_obs
from repro.serving.batch import DeadlineExceededInBatch, MicroBatcher
from repro.serving.engine import ScoringEngine, graph_fingerprint
from repro.serving.registry import ModelArtifact

__all__ = [
    "BadRequest",
    "DeadlineExceeded",
    "InfluenceService",
    "ServiceConfig",
    "ServiceUnavailable",
]


class BadRequest(Exception):
    """Malformed request payload (HTTP 400)."""


class ServiceUnavailable(Exception):
    """The service is saturated (HTTP 503 + Retry-After)."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


class DeadlineExceeded(Exception):
    """The request missed its deadline (HTTP 504)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Capacity and degradation policy.

    Attributes:
        max_inflight: requests executing concurrently.
        queue_limit: additional requests allowed to wait for a slot;
            arrivals beyond ``max_inflight + queue_limit`` get 503.
        default_deadline: seconds granted to requests that set none.
        max_deadline: hard ceiling on client-supplied deadlines.
        retry_after: seconds suggested in 503 responses.
        max_seeds: upper bound on ``k`` per request.
        max_simulations: upper bound on Monte-Carlo repetitions.
        batch_window_ms: cross-request micro-batching window in
            milliseconds; ``0`` disables batching (the default — single
            requests pay no window latency).
        batch_max_requests: batch executes immediately at this size.
        max_mutation_edges: upper bound on edges per live-mutation request.
    """

    max_inflight: int = 8
    queue_limit: int = 32
    default_deadline: float = 5.0
    max_deadline: float = 60.0
    retry_after: float = 1.0
    max_seeds: int = 10_000
    max_simulations: int = 10_000
    batch_window_ms: float = 0.0
    batch_max_requests: int = 32
    max_mutation_edges: int = 10_000

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise TrainingError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.queue_limit < 0:
            raise TrainingError(f"queue_limit must be >= 0, got {self.queue_limit}")
        if self.default_deadline <= 0 or self.max_deadline <= 0:
            raise TrainingError("deadlines must be positive")
        if self.batch_window_ms < 0:
            raise TrainingError(
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}"
            )
        if self.batch_max_requests < 1:
            raise TrainingError(
                f"batch_max_requests must be >= 1, got {self.batch_max_requests}"
            )


class InfluenceService:
    """Answers influence queries for one artifact against one graph.

    Args:
        artifact: the published model to serve.
        graph: the resident evaluation graph requests are answered on; its
            fingerprint is precomputed so per-request keying is O(1).
        model_name / model_version: registry coordinates, echoed in
            responses and ``/healthz``.
        config: capacity policy.
        obs: observability bundle (a fresh enabled one when ``None`` so
            ``/metrics`` always has data).
        engine: optionally inject a prebuilt engine (tests).
    """

    def __init__(
        self,
        artifact: ModelArtifact,
        graph: Graph,
        *,
        model_name: str = "default",
        model_version: int | None = None,
        config: ServiceConfig | None = None,
        obs: Observability | None = None,
        engine: ScoringEngine | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.obs = obs if obs is not None else Observability()
        self.obs = ensure_obs(self.obs)
        self.artifact = artifact
        self.graph = graph
        self.fingerprint = graph_fingerprint(graph)
        self.model_name = model_name
        self.model_version = model_version
        self.engine = engine or ScoringEngine(artifact, obs=self.obs)
        self.started = time.monotonic()
        self._slots = threading.Semaphore(self.config.max_inflight)
        self._admission_lock = threading.Lock()
        #: guards the (graph, fingerprint) pair: live mutations swap both
        #: atomically, and every request snapshots both together so a
        #: response never mixes one graph's scores with another's identity.
        self._graph_lock = threading.Lock()
        self._waiting = 0
        self._inflight = 0
        #: live-mutation counter, echoed by /healthz and /metrics.
        self._mutations = 0
        self.batcher: MicroBatcher | None = None
        if self.config.batch_window_ms > 0:
            self.batcher = MicroBatcher(
                self.engine,
                window=self.config.batch_window_ms / 1000.0,
                max_batch=self.config.batch_max_requests,
                obs=self.obs,
            )
        #: post-shutdown flag: reject new work during graceful drain.
        self._closed = False

    def resident(self) -> tuple[Graph, str]:
        """The current (graph, fingerprint) pair, read atomically."""
        with self._graph_lock:
            return self.graph, self.fingerprint

    # ------------------------------------------------------------------ #
    # Admission control
    # ------------------------------------------------------------------ #
    def _resolve_deadline(self, payload: dict[str, Any]) -> float:
        raw = payload.get("deadline_ms")
        if raw is None:
            return self.config.default_deadline
        if isinstance(raw, bool):
            # bool is an int subclass: `true` would float() to 1ms.
            raise BadRequest(f"deadline_ms must be a number, got {raw!r}")
        try:
            seconds = float(raw) / 1000.0
        except (TypeError, ValueError):
            raise BadRequest(f"deadline_ms must be a number, got {raw!r}") from None
        if not math.isfinite(seconds):
            # NaN slips past `<= 0` (every comparison is False) and then
            # poisons min() and the semaphore timeout; inf would disable
            # the deadline entirely.  Both are malformed input, not policy.
            raise BadRequest(f"deadline_ms must be finite, got {raw!r}")
        if seconds <= 0:
            raise BadRequest(f"deadline_ms must be positive, got {raw!r}")
        return min(seconds, self.config.max_deadline)

    def _execute(self, op: str, deadline: float, work: Callable[[], Any]) -> Any:
        """Run ``work`` under admission control and the deadline."""
        if self._closed:
            raise ServiceUnavailable("service is shutting down", self.config.retry_after)
        started = time.monotonic()
        acquired = self._slots.acquire(blocking=False)
        if not acquired:
            # All slots busy: join the bounded wait queue (or get 503).
            with self._admission_lock:
                if self._waiting >= self.config.queue_limit:
                    self.obs.counter("serve.rejected.saturated").inc()
                    raise ServiceUnavailable(
                        f"request queue is full ({self._waiting} waiting, "
                        f"{self._inflight} executing)",
                        self.config.retry_after,
                    )
                self._waiting += 1
                self.obs.gauge("serve.queue_depth").set(self._waiting)
            acquired = self._slots.acquire(timeout=deadline)
            with self._admission_lock:
                self._waiting -= 1
                self.obs.gauge("serve.queue_depth").set(self._waiting)
            if not acquired:
                self.obs.counter("serve.deadline_exceeded").inc()
                raise DeadlineExceeded(
                    f"{op}: no execution slot within {deadline:.3f}s"
                )
        with self._admission_lock:
            self._inflight += 1
            self.obs.gauge("serve.inflight").set(self._inflight)
        try:
            result = work()
        finally:
            self._slots.release()
            with self._admission_lock:
                self._inflight -= 1
                self.obs.gauge("serve.inflight").set(self._inflight)
        elapsed = time.monotonic() - started
        self.obs.metrics.histogram(f"serve.latency.{op}").observe(elapsed)
        if elapsed > deadline:
            # The work is done (and cached), but the client asked for an
            # answer by the deadline — report the miss honestly.
            self.obs.counter("serve.deadline_exceeded").inc()
            raise DeadlineExceeded(
                f"{op}: completed in {elapsed:.3f}s, past the {deadline:.3f}s deadline"
            )
        self.obs.counter(f"serve.requests.{op}").inc()
        return result

    # ------------------------------------------------------------------ #
    # Payload helpers
    # ------------------------------------------------------------------ #
    def _provenance(self) -> dict[str, Any]:
        return {
            "model": self.model_name,
            "version": self.model_version,
            "method": self.artifact.method,
            "privacy": self.artifact.privacy.to_json(),
        }

    @staticmethod
    def _int_list(payload: dict[str, Any], key: str) -> list[int]:
        raw = payload.get(key)
        if not isinstance(raw, (list, tuple)) or not raw:
            raise BadRequest(f"{key!r} must be a non-empty list of node ids")
        try:
            return [int(value) for value in raw]
        except (TypeError, ValueError):
            raise BadRequest(f"{key!r} must contain integers, got {raw!r}") from None

    # ------------------------------------------------------------------ #
    # Operations (the HTTP layer maps one endpoint to each)
    # ------------------------------------------------------------------ #
    def health(self) -> dict[str, Any]:
        """``/healthz`` — liveness plus the served model's coordinates."""
        graph, fingerprint = self.resident()
        return {
            "status": "ok" if not self._closed else "draining",
            "uptime_seconds": time.monotonic() - self.started,
            "graph_nodes": graph.num_nodes,
            "graph_edges": graph.num_edges,
            "graph_fingerprint": fingerprint,
            "graph_mutations": self._mutations,
            **self._provenance(),
        }

    def score(self, payload: dict[str, Any]) -> dict[str, Any]:
        """``/v1/score`` — scores for a node list (or every node)."""
        deadline = self._resolve_deadline(payload)
        graph, fingerprint = self.resident()
        nodes = None
        if payload.get("nodes") is not None:
            nodes = self._int_list(payload, "nodes")
            if max(nodes) >= graph.num_nodes or min(nodes) < 0:
                raise BadRequest(
                    f"node ids must be in [0, {graph.num_nodes})"
                )

        def work():
            if self.batcher is not None:
                scores = self._batched(
                    lambda: self.batcher.submit_score(
                        graph, fingerprint, nodes, deadline
                    )
                )
            else:
                scores = self.engine.score_nodes(
                    graph, nodes, fingerprint=fingerprint
                )
            return [float(value) for value in scores]

        scores = self._execute("score", deadline, work)
        return {
            "nodes": nodes if nodes is not None else list(range(graph.num_nodes)),
            "scores": scores,
            "graph_fingerprint": fingerprint,
            **self._provenance(),
        }

    def seeds(self, payload: dict[str, Any]) -> dict[str, Any]:
        """``/v1/seeds`` — the top-``k`` seed set."""
        deadline = self._resolve_deadline(payload)
        graph, fingerprint = self.resident()
        k = payload.get("k")
        if not isinstance(k, int) or isinstance(k, bool):
            raise BadRequest(f"'k' must be an integer, got {k!r}")
        if not 1 <= k <= min(graph.num_nodes, self.config.max_seeds):
            raise BadRequest(
                f"'k' must be in [1, "
                f"{min(graph.num_nodes, self.config.max_seeds)}], got {k}"
            )
        rng = payload.get("tie_break_seed")
        if rng is not None and (isinstance(rng, bool) or not isinstance(rng, int)):
            # bool passes a bare isinstance(rng, int) check and would be
            # silently cached as seed 0/1 — reject it like any non-integer.
            raise BadRequest(f"'tie_break_seed' must be an integer, got {rng!r}")

        def work():
            if self.batcher is not None:
                return self._batched(
                    lambda: self.batcher.submit_seeds(
                        graph, fingerprint, k, rng, deadline
                    )
                )
            return self.engine.top_k_seeds(
                graph, k, rng=rng, fingerprint=fingerprint
            )

        seeds = self._execute("seeds", deadline, work)
        return {
            "k": k,
            "seeds": seeds,
            "graph_fingerprint": fingerprint,
            **self._provenance(),
        }

    def _batched(self, submit: Callable[[], Any]) -> Any:
        """Run a batcher submission, translating its deadline marker."""
        try:
            return submit()
        except DeadlineExceededInBatch as error:
            self.obs.counter("serve.deadline_exceeded").inc()
            raise DeadlineExceeded(str(error)) from None

    def spread(self, payload: dict[str, Any]) -> dict[str, Any]:
        """``/v1/spread`` — influence spread of a client seed set."""
        deadline = self._resolve_deadline(payload)
        graph, fingerprint = self.resident()
        seeds = self._int_list(payload, "seeds")
        if max(seeds) >= graph.num_nodes or min(seeds) < 0:
            raise BadRequest(f"seed ids must be in [0, {graph.num_nodes})")
        diffusion = payload.get("diffusion", "ic")
        if diffusion not in ("ic", "lt", "sis"):
            raise BadRequest(
                f"'diffusion' must be one of ic/lt/sis, got {diffusion!r}"
            )
        steps = payload.get("steps", 1)
        if steps is not None and (
            isinstance(steps, bool) or not isinstance(steps, int) or steps < 0
        ):
            raise BadRequest(f"'steps' must be a non-negative integer, got {steps!r}")
        simulations = payload.get("num_simulations", 100)
        if (
            isinstance(simulations, bool)
            or not isinstance(simulations, int)
            or not (1 <= simulations <= self.config.max_simulations)
        ):
            raise BadRequest(
                f"'num_simulations' must be in [1, {self.config.max_simulations}], "
                f"got {simulations!r}"
            )
        seed = payload.get("seed")
        if seed is not None and (
            isinstance(seed, bool) or not isinstance(seed, int)
        ):
            raise BadRequest(f"'seed' must be an integer, got {seed!r}")

        def work():
            kwargs = {} if seed is None else {"rng": seed}
            return self.engine.estimate_spread(
                graph,
                seeds,
                model=diffusion,
                steps=steps,
                num_simulations=simulations,
                fingerprint=fingerprint,
                **kwargs,
            )

        spread = self._execute("spread", deadline, work)
        return {
            "seeds": seeds,
            "diffusion": diffusion,
            "spread": spread,
            "graph_fingerprint": fingerprint,
            **self._provenance(),
        }

    def mutate_edges(self, payload: dict[str, Any]) -> dict[str, Any]:
        """``POST /v1/graph/edges`` — live add/remove of resident edges.

        Rebuilds the CSR incrementally (:meth:`Graph.add_edges` /
        :meth:`Graph.remove_edges`), recomputes the fingerprint, swaps the
        (graph, fingerprint) pair atomically, and invalidates exactly the
        caches keyed by the *old* fingerprint — warm entries for any other
        graph survive.  In-flight requests that snapshotted the old pair
        finish against the old graph with the old fingerprint in their
        response: a response never mixes graph states.
        """
        deadline = self._resolve_deadline(payload)
        op = payload.get("op")
        if op not in ("add", "remove"):
            raise BadRequest(f"'op' must be 'add' or 'remove', got {op!r}")
        raw_edges = payload.get("edges")
        if not isinstance(raw_edges, (list, tuple)) or not raw_edges:
            raise BadRequest("'edges' must be a non-empty list of [u, v] pairs")
        if len(raw_edges) > self.config.max_mutation_edges:
            raise BadRequest(
                f"'edges' exceeds the per-request limit of "
                f"{self.config.max_mutation_edges}"
            )
        edges = []
        for pair in raw_edges:
            if (
                not isinstance(pair, (list, tuple))
                or len(pair) != 2
                or any(isinstance(end, bool) or not isinstance(end, int)
                       for end in pair)
            ):
                raise BadRequest(
                    f"'edges' must contain [u, v] integer pairs, got {pair!r}"
                )
            edges.append((pair[0], pair[1]))
        weights = payload.get("weights")
        if weights is not None:
            if op != "add":
                raise BadRequest("'weights' is only valid with op 'add'")
            if not isinstance(weights, (list, tuple)) or len(weights) != len(edges):
                raise BadRequest(
                    "'weights' must be a list the same length as 'edges'"
                )
            try:
                weights = [float(value) for value in weights]
            except (TypeError, ValueError):
                raise BadRequest(
                    f"'weights' must contain numbers, got {weights!r}"
                ) from None

        def work():
            with self._graph_lock:
                old_fingerprint = self.fingerprint
                try:
                    if op == "add":
                        mutated = self.graph.add_edges(edges, weights=weights)
                    else:
                        mutated = self.graph.remove_edges(edges)
                except GraphError as error:
                    raise BadRequest(str(error)) from None
                new_fingerprint = graph_fingerprint(mutated)
                self.graph = mutated
                self.fingerprint = new_fingerprint
                self._mutations += 1
            dropped = self.engine.invalidate(old_fingerprint)
            self.obs.counter(f"serve.graph.mutations.{op}").inc()
            return old_fingerprint, new_fingerprint, dropped, mutated

        old_fingerprint, new_fingerprint, dropped, mutated = self._execute(
            "mutate", deadline, work
        )
        return {
            "op": op,
            "edges": len(edges),
            "graph_nodes": mutated.num_nodes,
            "graph_edges": mutated.num_edges,
            "old_fingerprint": old_fingerprint,
            "graph_fingerprint": new_fingerprint,
            "invalidated": dropped,
            **self._provenance(),
        }

    def metrics(self) -> dict[str, Any]:
        """``/metrics`` — counters, latency quantiles, queue, caches."""
        snapshot = self.obs.metrics.snapshot()
        latency = {}
        for name, histogram in self.obs.metrics.histograms().items():
            if not name.startswith("serve.latency."):
                continue
            op = name[len("serve.latency."):]
            latency[op] = {
                "count": histogram.count,
                "mean_seconds": histogram.mean,
                "p50_seconds": histogram.quantile(0.5),
                "p95_seconds": histogram.quantile(0.95),
                "max_seconds": histogram.maximum if histogram.count else 0.0,
            }
        with self._admission_lock:
            queue_depth = self._waiting
            inflight = self._inflight
        return {
            "uptime_seconds": time.monotonic() - self.started,
            "queue_depth": queue_depth,
            "inflight": inflight,
            "counters": snapshot["counters"],
            "latency": latency,
            "engine": self.engine.stats(),
            "batching": self.batcher.stats() if self.batcher is not None else None,
            "graph_mutations": self._mutations,
            **self._provenance(),
        }

    def close(self) -> None:
        """Stop admitting work (existing requests drain normally)."""
        self._closed = True
