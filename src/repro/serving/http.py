"""Dependency-free threaded HTTP JSON API over an :class:`InfluenceService`.

Built on ``http.server.ThreadingHTTPServer`` — one daemon thread per
connection, no third-party framework.  Endpoints (GET paths ignore any
query string — ``/healthz?probe=1`` is ``/healthz``):

===============  ======  ====================================================
Path             Method  Meaning
===============  ======  ====================================================
/healthz         GET     liveness + served-model coordinates
/metrics         GET     counters, latency p50/p95, queue depth, cache stats
/v1/models       GET     registry listing (names, versions, privacy)
/v1/score        POST    ``{"nodes": [...]?}`` → per-node scores
/v1/seeds        POST    ``{"k": int}`` → top-k seed set
/v1/spread       POST    ``{"seeds": [...], "diffusion": "ic"?}`` → spread
/v1/graph/edges  POST    ``{"op": "add"|"remove", "edges": [[u,v],...]}``
                         → live mutation + selective cache invalidation
===============  ======  ====================================================

Error mapping: malformed payloads → 400, unknown paths → 404, missing
``Content-Length`` (or unsupported ``Transfer-Encoding``) → 411,
oversized bodies → 413, saturation → 503 with a ``Retry-After`` header,
missed deadlines → 504, anything unexpected → 500.  Every response body
is JSON.  The 411 and 413 rejections close the connection: the unread
body bytes would otherwise desynchronise HTTP/1.1 keep-alive framing.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.serving.registry import ModelRegistry
from repro.serving.service import (
    BadRequest,
    DeadlineExceeded,
    InfluenceService,
    ServiceUnavailable,
)

__all__ = [
    "InfluenceHTTPServer",
    "LengthRequired",
    "PayloadTooLarge",
    "make_server",
    "MAX_BODY_BYTES",
]

#: Request bodies above this are rejected with 413 before being read.
MAX_BODY_BYTES = 4 * 1024 * 1024


class PayloadTooLarge(Exception):
    """Declared request body exceeds :data:`MAX_BODY_BYTES` (HTTP 413)."""


class LengthRequired(Exception):
    """Body framing the server cannot parse safely (HTTP 411).

    Raised for a POST without ``Content-Length`` and for any
    ``Transfer-Encoding`` (chunked bodies are unsupported): guessing the
    body length would leave unread bytes on a keep-alive connection, and
    the *next* request would be parsed from the middle of this one's body.
    """


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the server's service; all responses are JSON."""

    server: "InfluenceHTTPServer"
    protocol_version = "HTTP/1.1"
    #: headers and body are written as separate TCP segments; without
    #: TCP_NODELAY, Nagle holds the body until the client ACKs the
    #: headers, and the client's delayed ACK turns every keep-alive
    #: response into a ~40ms stall.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------ #
    def _send_json(
        self, status: int, payload: dict[str, Any], headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-response.  Its answer is gone either
            # way; don't let the handler thread dump a traceback, just
            # drop the dead connection.
            self.close_connection = True
            self.server.service.obs.counter("serve.client_disconnects").inc()

    def _send_error(self, status: int, message: str, **headers: str) -> None:
        self.server.service.obs.counter(f"serve.responses.{status}").inc()
        self._send_json(status, {"error": message, "status": status}, headers)

    def _read_payload(self) -> dict[str, Any]:
        if self.headers.get("Transfer-Encoding"):
            # Chunked (or any transfer-coded) bodies are unsupported;
            # pretending the body is empty would desync keep-alive.
            self.close_connection = True
            raise LengthRequired(
                "Transfer-Encoding is not supported; send Content-Length"
            )
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            self.close_connection = True
            raise LengthRequired("POST requires a Content-Length header")
        try:
            length = int(raw_length)
        except ValueError:
            self.close_connection = True
            raise BadRequest(
                f"Content-Length must be an integer, got {raw_length!r}"
            ) from None
        if length < 0:
            self.close_connection = True
            raise BadRequest(f"Content-Length must be >= 0, got {length}")
        if length > MAX_BODY_BYTES:
            # Reject before reading: the body stays unread, so the
            # connection must close (413, not the 400 the docstring
            # contract never promised).
            self.close_connection = True
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds {MAX_BODY_BYTES}"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise BadRequest(f"body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise BadRequest("body must be a JSON object")
        return payload

    def _dispatch(self, fn) -> None:
        service = self.server.service
        try:
            result = fn()
        except BadRequest as error:
            self._send_error(400, str(error))
        except LengthRequired as error:
            self._send_error(411, str(error))
        except PayloadTooLarge as error:
            self._send_error(413, str(error))
        except ServiceUnavailable as error:
            self._send_error(
                503, str(error), **{"Retry-After": f"{error.retry_after:.0f}"}
            )
        except DeadlineExceeded as error:
            self._send_error(504, str(error))
        except Exception as error:  # pragma: no cover - defensive catch-all
            service.obs.logger.error("request_failed", path=self.path, error=str(error))
            self._send_error(500, f"internal error: {error}")
        else:
            service.obs.counter("serve.responses.200").inc()
            self._send_json(200, result)

    @property
    def _route_path(self) -> str:
        """Request path with any query string split off for routing."""
        return self.path.split("?", 1)[0]

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        path = self._route_path
        if path == "/healthz":
            self._dispatch(service.health)
        elif path == "/metrics":
            self._dispatch(service.metrics)
        elif path == "/v1/models":
            self._dispatch(self.server.describe_models)
        else:
            self._send_error(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        service = self.server.service
        routes = {
            "/v1/score": service.score,
            "/v1/seeds": service.seeds,
            "/v1/spread": service.spread,
            "/v1/graph/edges": service.mutate_edges,
        }
        handler = routes.get(self._route_path)
        if handler is None:
            self._send_error(404, f"unknown path {self.path!r}")
            return
        self._dispatch(lambda: handler(self._read_payload()))

    def log_message(self, format: str, *args: Any) -> None:
        # Route access logs through the structured logger (silent unless
        # the operator enabled logging) instead of raw stderr.
        self.server.service.obs.logger.debug(
            "http_access", client=self.client_address[0], line=format % args
        )


class InfluenceHTTPServer(ThreadingHTTPServer):
    """Threaded server bound to one service (and optionally a registry)."""

    daemon_threads = True
    allow_reuse_address = True
    # The default accept backlog (5) RSTs connections under a modest burst
    # — a silent drop with no HTTP status.  Degradation must happen at the
    # service layer (503 + Retry-After), so accept generously and let
    # admission control do the rejecting.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service: InfluenceService,
        registry: ModelRegistry | None = None,
        *,
        sock: socket.socket | None = None,
        reuse_port: bool = False,
    ) -> None:
        """Bind to ``address``, or adopt an already-listening ``sock``.

        ``sock`` is the pre-fork replica mode: the router parent binds and
        listens once, every worker adopts the shared socket and accepts
        from it.  ``reuse_port`` is the SO_REUSEPORT mode: every worker
        binds the same port itself and the kernel balances accepts.
        """
        self._adopted_socket = sock
        self._reuse_port = reuse_port
        super().__init__(address, _Handler)
        self.service = service
        self.registry = registry

    def server_bind(self) -> None:
        if self._adopted_socket is not None:
            self.socket.close()  # the throwaway socket TCPServer made
            self.socket = self._adopted_socket
            self.server_address = self.socket.getsockname()
            return
        if self._reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise OSError("SO_REUSEPORT is not available on this platform")
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    def server_activate(self) -> None:
        if self._adopted_socket is not None:
            return  # the adopted socket is already listening
        super().server_activate()

    def describe_models(self) -> dict[str, Any]:
        """``/v1/models`` — the registry listing plus the active model."""
        active = {
            "model": self.service.model_name,
            "version": self.service.model_version,
        }
        if self.registry is None:
            return {"active": active, "models": {}}
        return {"active": active, "models": self.registry.describe()}

    def shutdown_gracefully(self) -> None:
        """Stop admitting work, then stop the accept loop."""
        self.service.close()
        self.shutdown()


def make_server(
    service: InfluenceService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    registry: ModelRegistry | None = None,
) -> InfluenceHTTPServer:
    """Bind (without serving) — ``port=0`` picks a free ephemeral port.

    Call ``serve_forever()`` (blocking) or run it in a thread; tests and
    the CLI both use :func:`start_in_thread`.
    """
    return InfluenceHTTPServer((host, port), service, registry)


def start_in_thread(server: InfluenceHTTPServer) -> threading.Thread:
    """Run ``server.serve_forever()`` in a daemon thread; returns it."""
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()
    return thread
