"""Unified observability: structured logs, metrics/spans, and run records.

The subsystem is dependency-free and off by default.  Components accept an
optional :class:`Observability` bundle; passing ``None`` resolves to the
shared :data:`NULL_OBS`, whose spans degrade to bare ``perf_counter``
pairs and whose instruments are no-ops, so the hot paths pay nothing when
nobody is watching.

Typical wiring (what the CLI does for ``--log-json --run-record``)::

    from repro.obs import Observability, RunRecorder, configure_logging

    configure_logging("info", json_lines=True)
    with RunRecorder("run.jsonl") as recorder:
        obs = Observability(recorder=recorder)
        pipeline = PrivIMStar(config, obs=obs)
        pipeline.fit(graph)

Every event lands in the recorder's JSONL file; see
``docs/observability.md`` for the schema.
"""

from __future__ import annotations

from typing import Any

from repro.obs.ledger import PrivacyLedger
from repro.obs.logging import (
    Logger,
    MemoryHandler,
    StreamHandler,
    configure_logging,
    get_logger,
    parse_level,
    reset_logging,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
)
from repro.obs.record import (
    RunRecorder,
    read_run_record,
    summarize_run_record,
    validate_run_record,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Logger",
    "MemoryHandler",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_OBS",
    "Observability",
    "PrivacyLedger",
    "RunRecorder",
    "Span",
    "StreamHandler",
    "configure_logging",
    "ensure_obs",
    "get_logger",
    "parse_level",
    "read_run_record",
    "reset_logging",
    "summarize_run_record",
    "validate_run_record",
]


class Observability:
    """One handle bundling a logger, a metrics registry, and a recorder.

    Args:
        logger: structured logger (default: the shared ``"repro"`` logger).
        metrics: metrics registry (default: a fresh enabled registry, or
            :data:`NULL_METRICS` when ``enabled=False``).
        recorder: optional :class:`RunRecorder` receiving every event.
        enabled: ``False`` builds the no-op bundle (see :data:`NULL_OBS`).
    """

    __slots__ = ("logger", "metrics", "recorder", "enabled")

    def __init__(
        self,
        *,
        logger: Logger | None = None,
        metrics: MetricsRegistry | None = None,
        recorder: RunRecorder | None = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = bool(enabled)
        self.logger = logger if logger is not None else get_logger("repro")
        if metrics is not None:
            self.metrics = metrics
        else:
            self.metrics = MetricsRegistry() if self.enabled else NULL_METRICS
        self.recorder = recorder

    # ------------------------------------------------------------------ #
    def span(self, name: str) -> Span:
        """A named span; measures wall time even when disabled."""
        if not self.enabled:
            return Span(None, name)
        return self.metrics.span(name, sink=self._span_sink)

    def _span_sink(self, span: Span) -> None:
        if self.recorder is not None:
            self.recorder.record("span", name=span.path, seconds=span.seconds)

    def event(self, type_: str, **fields: Any) -> None:
        """Record a run-record event and mirror it to the log (debug)."""
        if not self.enabled:
            return
        if self.recorder is not None:
            self.recorder.record(type_, **fields)
        self.logger.debug(type_, **fields)

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def ledger_sink(self):
        """Sink callable for :class:`PrivacyLedger` (``None`` if disabled)."""
        if not self.enabled or self.recorder is None:
            return None
        return self.recorder.record_event


#: Shared disabled bundle — all instruments no-op, spans are bare timers.
NULL_OBS = Observability(enabled=False)


def ensure_obs(obs: Observability | None) -> Observability:
    """Resolve an optional ``obs`` argument to a usable bundle."""
    return obs if obs is not None else NULL_OBS
