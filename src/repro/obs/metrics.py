"""Counters, gauges, timing histograms, and named spans.

A :class:`MetricsRegistry` is a plain in-process container — no threads, no
exporters — whose instruments the pipeline, trainer, and sampling engine
update as they run.  :meth:`MetricsRegistry.snapshot` turns the whole
registry into a JSON-able dict for run records and reports.

Spans replace the ad-hoc ``time.perf_counter()`` pairs that used to be
scattered across the hot paths: ``with registry.span("stage1") as span``
measures wall time, records it into the histogram ``span.<path>`` and the
registry's span log, and still exposes ``span.seconds`` so legacy fields
(``SamplingStats.stage_seconds``, ``TrainingHistory.seconds``) are populated
from the same measurement.  Spans nest — an inner span's path is prefixed
with its parent's (``train.iteration``), giving a flat, greppable timing
namespace.

When a registry is disabled (``MetricsRegistry(enabled=False)`` — the
shared :data:`NULL_METRICS` instance) every instrument degrades to a no-op
and a span compiles down to a bare ``perf_counter`` pair, so the
observability layer costs nothing on the hot path.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "MetricsRegistry",
    "NULL_METRICS",
]


class Counter:
    """Monotonically increasing integer.

    ``inc`` is thread-safe: the serving layer increments request and cache
    counters from one handler thread per connection, and the bare
    ``value += amount`` read-modify-write loses increments under
    contention.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value plus how many times it was set (thread-safe)."""

    __slots__ = ("value", "updates", "_lock")

    def __init__(self) -> None:
        self.value: float | None = None
        self.updates = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)
            self.updates += 1


class Histogram:
    """Streaming summary (count / total / min / max) of observed values.

    A bounded reservoir of the most recent :data:`SAMPLE_LIMIT` values
    backs :meth:`quantile`, so latency percentiles (p50/p95 in the serving
    layer's ``/metrics``) track recent behaviour with O(1) memory.
    """

    #: Ring-buffer capacity backing :meth:`quantile`.
    SAMPLE_LIMIT = 1024

    __slots__ = (
        "count", "total", "minimum", "maximum", "_samples", "_cursor", "_lock"
    )

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._samples: list[float] = []
        self._cursor = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
            if len(self._samples) < self.SAMPLE_LIMIT:
                self._samples.append(value)
            else:
                self._samples[self._cursor] = value
                self._cursor = (self._cursor + 1) % self.SAMPLE_LIMIT

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``) of the sample reservoir.

        Linear interpolation between order statistics; 0.0 when nothing
        has been observed yet.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }


class _NullCounter(Counter):
    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class Span:
    """A named wall-time measurement, usable as a context manager.

    ``seconds`` is valid after ``__exit__`` regardless of whether the
    owning registry records anything — disabled observability reduces a
    span to exactly the ``perf_counter`` pair it replaced.
    """

    __slots__ = ("name", "path", "seconds", "started", "_registry", "_sink")

    def __init__(
        self,
        registry: "MetricsRegistry | None",
        name: str,
        sink: Callable[["Span"], None] | None = None,
    ) -> None:
        self.name = name
        self.path = name
        self.seconds = 0.0
        self.started = 0.0
        self._registry = registry
        self._sink = sink

    def __enter__(self) -> "Span":
        registry = self._registry
        if registry is not None:
            stack = registry._span_stack
            if stack:
                self.path = f"{stack[-1].path}.{self.name}"
            stack.append(self)
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self.started
        registry = self._registry
        if registry is not None:
            registry._span_stack.pop()
            registry.histogram(f"span.{self.path}").observe(self.seconds)
            with registry._lock:
                registry.span_log.append((self.path, self.seconds))
            if self._sink is not None:
                self._sink(self)


class MetricsRegistry:
    """Named counters, gauges, histograms, and the active span stack.

    Instrument lookup/creation and the span log are lock-protected, and
    the span stack is **per-thread**: the serving layer opens spans from
    one handler thread per connection, and a shared stack would interleave
    unrelated requests into each other's nesting paths.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._span_local = threading.local()
        #: ``(path, seconds)`` of every completed span, in completion order.
        self.span_log: list[tuple[str, float]] = []

    @property
    def _span_stack(self) -> list[Span]:
        """The calling thread's span stack (nesting never crosses threads)."""
        stack = getattr(self._span_local, "stack", None)
        if stack is None:
            stack = self._span_local.stack = []
        return stack

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NULL_COUNTER
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter()
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge()
            return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram()
            return self._histograms[name]

    def span(self, name: str, sink: Callable[[Span], None] | None = None) -> Span:
        """A new named span; records into the registry only when enabled."""
        return Span(self if self.enabled else None, name, sink)

    def histograms(self) -> dict[str, Histogram]:
        """Read-only view of every named histogram (for exporters)."""
        with self._lock:
            return dict(self._histograms)

    def span_seconds(self, path: str) -> float:
        """Total wall time of all completed spans with exactly ``path``."""
        with self._lock:
            log = list(self.span_log)
        return float(sum(seconds for name, seconds in log if name == path))

    def snapshot(self) -> dict[str, Any]:
        """JSON-able dump of every instrument."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in counters.items()},
            "gauges": {name: g.value for name, g in gauges.items()},
            "histograms": {name: h.summary() for name, h in histograms.items()},
        }


#: Shared disabled registry — every instrument is a no-op.
NULL_METRICS = MetricsRegistry(enabled=False)
