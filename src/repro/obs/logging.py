"""Structured logging with a human-readable and a JSON-lines format.

The library is silent by default: loggers are created lazily and drop every
record until :func:`configure_logging` installs a handler, so importing or
running any subsystem with observability disabled costs one integer
comparison per call site.  Records are structured — a short ``event`` name
plus arbitrary key/value fields — so the same call renders either as a
human line::

    12:03:41.512 INFO repro.trainer iteration loss=0.412 step=7

or, with ``json_lines=True``, as one JSON object per line::

    {"ts": 1754480621.512, "level": "info", "logger": "repro.trainer",
     "event": "iteration", "loss": 0.412, "step": 7}

The JSON schema is stable: ``ts`` (unix seconds), ``level``, ``logger``,
and ``event`` are always present; the remaining keys are the call's fields
(reserved keys win on collision).  Everything here is stdlib-only.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, TextIO

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40
#: Level at which every record is dropped (the default).
OFF = 100

_LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning", ERROR: "error"}
_NAME_LEVELS = {name: level for level, name in _LEVEL_NAMES.items()}

#: Reserved JSON keys that structured fields may not override.
RESERVED_KEYS = ("ts", "level", "logger", "event")


def parse_level(level: int | str) -> int:
    """Normalise ``"info"`` / ``20`` style level specs to an integer."""
    if isinstance(level, str):
        key = level.lower()
        if key not in _NAME_LEVELS:
            raise ValueError(
                f"unknown log level {level!r}; choose from {sorted(_NAME_LEVELS)}"
            )
        return _NAME_LEVELS[key]
    return int(level)


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of numpy scalars / arrays / paths for JSON."""
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if hasattr(value, "tolist"):  # numpy array
        return value.tolist()
    return str(value)


@dataclass
class LogRecord:
    """One structured log entry."""

    created: float
    level: int
    name: str
    event: str
    fields: dict[str, Any] = field(default_factory=dict)

    @property
    def level_name(self) -> str:
        return _LEVEL_NAMES.get(self.level, str(self.level))

    def to_json(self) -> str:
        """The record as one JSON line (stable schema, reserved keys win)."""
        payload = dict(self.fields)
        payload.update(
            ts=round(self.created, 6),
            level=self.level_name,
            logger=self.name,
            event=self.event,
        )
        # Keep reserved keys first for readability.
        ordered = {key: payload.pop(key) for key in RESERVED_KEYS}
        ordered.update(payload)
        return json.dumps(ordered, default=_jsonable)

    def to_text(self) -> str:
        """The record as a human-readable line."""
        clock = time.strftime("%H:%M:%S", time.localtime(self.created))
        millis = int((self.created % 1.0) * 1000)
        parts = [f"{clock}.{millis:03d}", self.level_name.upper(), self.name, self.event]
        parts.extend(f"{key}={value}" for key, value in self.fields.items())
        return " ".join(str(part) for part in parts)


class Handler:
    """Base handler: receives every record that passes the level filter."""

    def emit(self, record: LogRecord) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class NullHandler(Handler):
    """Drops everything (the disabled default)."""

    def emit(self, record: LogRecord) -> None:
        pass


class StreamHandler(Handler):
    """Writes records to a text stream, human or JSON-lines format."""

    def __init__(self, stream: TextIO | None = None, *, json_lines: bool = False) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.json_lines = bool(json_lines)

    def emit(self, record: LogRecord) -> None:
        line = record.to_json() if self.json_lines else record.to_text()
        self.stream.write(line + "\n")


class MemoryHandler(Handler):
    """Collects records in a list (tests and programmatic inspection)."""

    def __init__(self) -> None:
        self.records: list[LogRecord] = []

    def emit(self, record: LogRecord) -> None:
        self.records.append(record)


class _Config:
    """Process-wide logging state shared by every :class:`Logger`."""

    __slots__ = ("level", "handler")

    def __init__(self) -> None:
        self.level = OFF
        self.handler: Handler = NullHandler()


_CONFIG = _Config()
_LOGGERS: dict[str, "Logger"] = {}


class Logger:
    """A named structured logger; obtain via :func:`get_logger`."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    def enabled(self) -> bool:
        """Whether any record below ERROR severity would be kept."""
        return _CONFIG.level <= ERROR

    def log(self, level: int, event: str, **fields: Any) -> None:
        """Emit ``event`` with structured ``fields`` at ``level``."""
        if level < _CONFIG.level:
            return
        _CONFIG.handler.emit(LogRecord(time.time(), level, self.name, event, fields))

    def debug(self, event: str, **fields: Any) -> None:
        self.log(DEBUG, event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log(INFO, event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log(WARNING, event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log(ERROR, event, **fields)


def get_logger(name: str = "repro") -> Logger:
    """The logger registered under ``name`` (created on first use)."""
    if name not in _LOGGERS:
        _LOGGERS[name] = Logger(name)
    return _LOGGERS[name]


def configure_logging(
    level: int | str = "info",
    *,
    json_lines: bool = False,
    stream: TextIO | None = None,
    handler: Handler | None = None,
) -> None:
    """Enable logging process-wide.

    Args:
        level: minimum severity to keep (name or integer).
        json_lines: emit one JSON object per line instead of human text.
        stream: destination stream (default ``sys.stderr``).
        handler: explicit handler, overriding ``json_lines`` / ``stream``.
    """
    _CONFIG.level = parse_level(level)
    _CONFIG.handler = (
        handler
        if handler is not None
        else StreamHandler(stream, json_lines=json_lines)
    )


def reset_logging() -> None:
    """Return to the silent default (drop everything)."""
    _CONFIG.level = OFF
    _CONFIG.handler = NullHandler()
