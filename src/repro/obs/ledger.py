"""The privacy-budget ledger: one event per composition step.

A final ε says nothing about *how* the budget was spent.  The ledger turns
the Theorem 3 accountant into a replayable trace: every time the
accountant records a composition step it appends an event carrying the
step index, the running ε at the ledger's δ, and a summary of the α-curve
(the optimising Rényi order and the cumulative γ there).  The ε in each
event is computed through the exact same grid search as
:meth:`repro.dp.accountant.PrivacyAccountant.epsilon`, so the final ledger
entry equals ``accountant.epsilon(delta)`` bit-for-bit.

Attach a ledger with ``accountant.attach_ledger(PrivacyLedger(delta))``;
the pipelines do this automatically when observability is enabled.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.dp.rdp import best_epsilon
from repro.errors import PrivacyError

__all__ = ["PrivacyLedger"]


class PrivacyLedger:
    """Records the ε trajectory of a :class:`PrivacyAccountant`.

    Args:
        delta: the δ at which running ε values are reported.
        sink: optional callable receiving each event dict (e.g.
            :meth:`repro.obs.record.RunRecorder.record_event`).
        logger: optional :class:`repro.obs.logging.Logger`; events are
            mirrored at debug level.
    """

    def __init__(
        self,
        delta: float,
        *,
        sink: Callable[[dict[str, Any]], Any] | None = None,
        logger=None,
    ) -> None:
        if not 0.0 < delta < 1.0:
            raise PrivacyError(f"delta must be in (0, 1), got {delta}")
        self.delta = float(delta)
        self.events: list[dict[str, Any]] = []
        self._sink = sink
        self._logger = logger

    def record_step(self, accountant) -> dict[str, Any]:
        """Append the event for the accountant's current step count."""
        epsilon, alpha = best_epsilon(accountant.rdp, self.delta, accountant.alphas)
        event = {
            "type": "ledger",
            "step": int(accountant.steps),
            "epsilon": float(max(epsilon, 0.0)),
            "delta": self.delta,
            "best_alpha": float(alpha),
            "gamma": float(accountant.rdp(alpha)),
        }
        self.events.append(event)
        if self._sink is not None:
            self._sink(event)
        if self._logger is not None:
            self._logger.debug(
                "privacy_step",
                step=event["step"],
                epsilon=event["epsilon"],
                best_alpha=event["best_alpha"],
            )
        return event

    @property
    def final_epsilon(self) -> float:
        """The last recorded running ε (0.0 before any step)."""
        return self.events[-1]["epsilon"] if self.events else 0.0

    @property
    def steps(self) -> int:
        """How many composition steps have been recorded."""
        return len(self.events)
