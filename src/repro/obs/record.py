"""JSONL run records: one file per run, one JSON object per event.

A :class:`RunRecorder` is the single sink every observability event flows
into — stage spans, per-iteration training metrics, privacy-ledger steps,
checkpoint writes/restores, and the run's start/end envelopes.  Each event
is a flat JSON object with a mandatory ``"type"`` key, written (and
flushed) as its own line, so a crashed run still leaves a parseable prefix
and ``jq``/pandas can consume the file directly.

:func:`read_run_record`, :func:`validate_run_record`, and
:func:`summarize_run_record` are the consumption helpers used by
``repro.experiments.reporting``, the benchmark harness, and the CI smoke
job.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

__all__ = [
    "RunRecorder",
    "read_run_record",
    "summarize_run_record",
    "validate_run_record",
]


def _jsonable(value: Any) -> Any:
    """Convert numpy scalars/arrays (and anything else) for ``json.dumps``."""
    if hasattr(value, "item"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)


class RunRecorder:
    """Collects run events in memory and, when given a path, appends each
    to a JSONL file as it happens."""

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self.events: list[dict[str, Any]] = []
        self._file = open(path, "w", encoding="utf-8") if path else None

    def record(self, type_: str, **fields: Any) -> dict[str, Any]:
        """Append one event; returns the event dict."""
        event = {"type": type_, **fields}
        return self.record_event(event)

    def record_event(self, event: dict[str, Any]) -> dict[str, Any]:
        """Append a pre-built event dict (must carry a ``"type"`` key)."""
        if "type" not in event:
            raise ValueError("run-record events require a 'type' key")
        self.events.append(event)
        if self._file is not None:
            self._file.write(json.dumps(event, default=_jsonable) + "\n")
            self._file.flush()
        return event

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_run_record(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL run record back into a list of event dicts."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON in run record: {error}"
                ) from error
            events.append(event)
    return events


def summarize_run_record(events: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Aggregate a run record into the quantities consumers care about.

    Returns a dict with ``events`` (total count), ``counts`` (per event
    type), ``span_seconds`` (wall time summed per span name), ``ledger``
    (the ``(step, epsilon)`` trace), ``final_epsilon`` (last ledger entry,
    ``None`` for non-private runs), and ``iterations`` (training-iteration
    events seen).
    """
    counts: dict[str, int] = {}
    span_seconds: dict[str, float] = {}
    ledger: list[tuple[int, float]] = []
    iterations = 0
    total = 0
    for event in events:
        total += 1
        kind = event.get("type", "?")
        counts[kind] = counts.get(kind, 0) + 1
        if kind == "span":
            name = event.get("name", "?")
            span_seconds[name] = span_seconds.get(name, 0.0) + float(
                event.get("seconds", 0.0)
            )
        elif kind == "ledger":
            ledger.append((int(event["step"]), float(event["epsilon"])))
        elif kind == "iteration":
            iterations += 1
    return {
        "events": total,
        "counts": counts,
        "span_seconds": span_seconds,
        "ledger": ledger,
        "final_epsilon": ledger[-1][1] if ledger else None,
        "iterations": iterations,
    }


def validate_run_record(source: str | list[dict[str, Any]]) -> dict[str, Any]:
    """Check a run record's structural invariants; returns its summary.

    Invariants: every line parses as a JSON object with a string ``type``;
    ledger steps are strictly increasing with non-decreasing, finite,
    non-negative ε; span events carry non-negative ``seconds``.  Raises
    :class:`ValueError` on the first violation.
    """
    events = read_run_record(source) if isinstance(source, str) else list(source)
    last_step, last_epsilon = 0, 0.0
    for index, event in enumerate(events):
        if not isinstance(event, dict) or not isinstance(event.get("type"), str):
            raise ValueError(f"event {index} is not an object with a string 'type'")
        kind = event["type"]
        if kind == "ledger":
            step, epsilon = int(event["step"]), float(event["epsilon"])
            if step <= last_step:
                raise ValueError(
                    f"event {index}: ledger step {step} not after {last_step}"
                )
            if not epsilon >= last_epsilon or epsilon != epsilon or epsilon == float("inf"):
                raise ValueError(
                    f"event {index}: ledger epsilon {epsilon} is not a finite "
                    f"value >= {last_epsilon}"
                )
            last_step, last_epsilon = step, epsilon
        elif kind == "span":
            if float(event.get("seconds", -1.0)) < 0.0:
                raise ValueError(f"event {index}: span without non-negative seconds")
    return summarize_run_record(events)
