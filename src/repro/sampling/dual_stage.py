"""Algorithm 3 — the dual-stage adaptive frequency sampling scheme (PrivIM*).

Stage 1, **Sensitivity-Constrained Sampling (SCS)**: frequency-weighted RWR
over the *original* graph (no θ-projection), with Eq. 9 probabilities and
the global cap ``M``, giving occurrence bound ``N_g* = M``.

Stage 2, **Boundary-Enhanced Sampling (BES)**: nodes that hit the cap are
removed; the frequency sampler runs again on the residual graph with a
smaller subgraph size ``n / s``, harvesting boundary clusters that are too
small to fill full-size subgraphs.  Because the same frequency vector keeps
counting, the cap — and hence the privacy budget — is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingError
from repro.graphs.graph import Graph
from repro.sampling.container import Subgraph, SubgraphContainer
from repro.sampling.frequency import FrequencyVector, frequency_walk
from repro.utils.rng import ensure_rng


@dataclass
class DualStageSamplingConfig:
    """Parameters of Algorithm 3 (paper defaults from Section V-A).

    Attributes:
        subgraph_size: ``n``, stage-1 subgraph size.
        threshold: ``M``, the global frequency cap.
        decay: μ, Eq. 9's decay factor.
        sampling_rate: ``q``, start-node selection probability.
        walk_length: ``L``, per-walk step budget (paper: 200).
        restart_probability: τ (paper: 0.3).
        boundary_divisor: ``s`` — stage 2 uses subgraphs of size ``n / s``.
        include_boundary: run stage 2 (disable to get "PrivIM+SCS").
        direction: walk traversal direction.
    """

    subgraph_size: int = 40
    threshold: int = 4
    decay: float = 1.0
    sampling_rate: float = 0.1
    walk_length: int = 200
    restart_probability: float = 0.3
    boundary_divisor: int = 2
    include_boundary: bool = True
    direction: str = "both"

    def validate(self) -> None:
        """Raise :class:`SamplingError` on out-of-range parameters."""
        if self.subgraph_size < 1:
            raise SamplingError(f"subgraph_size must be >= 1, got {self.subgraph_size}")
        if self.threshold < 1:
            raise SamplingError(f"threshold M must be >= 1, got {self.threshold}")
        if self.decay < 0:
            raise SamplingError(f"decay mu must be >= 0, got {self.decay}")
        if not 0.0 < self.sampling_rate <= 1.0:
            raise SamplingError(f"sampling_rate must be in (0, 1], got {self.sampling_rate}")
        if self.walk_length < 1:
            raise SamplingError(f"walk_length must be >= 1, got {self.walk_length}")
        if not 0.0 <= self.restart_probability < 1.0:
            raise SamplingError("restart_probability must be in [0, 1)")
        if self.boundary_divisor < 1:
            raise SamplingError(
                f"boundary_divisor s must be >= 1, got {self.boundary_divisor}"
            )

    @property
    def boundary_subgraph_size(self) -> int:
        """Stage-2 subgraph size ``max(n // s, 2)``."""
        return max(self.subgraph_size // self.boundary_divisor, 2)


@dataclass
class DualStageResult:
    """Output of :func:`extract_subgraphs_dual_stage`.

    Attributes:
        container: combined pool ``G_sub`` (stage 1 + stage 2).
        frequency: final frequency vector (indexed by original node id).
        stage1_count: subgraphs from SCS.
        stage2_count: subgraphs from BES.
    """

    container: SubgraphContainer
    frequency: FrequencyVector
    stage1_count: int
    stage2_count: int


def _frequency_sampling_pass(
    graph: Graph,
    frequency: FrequencyVector,
    node_ids: np.ndarray,
    subgraph_size: int,
    config: DualStageSamplingConfig,
    generator: np.random.Generator,
    source_graph: Graph,
) -> SubgraphContainer:
    """One ``FreqSampling`` pass (Algorithm 3, lines 9–28).

    ``graph`` is the graph walked on (original or residual) with *local*
    ids; ``node_ids[i]`` maps local node ``i`` back to the original id the
    frequency vector uses.  ``source_graph`` provides the edges for the
    emitted subgraphs (identical to ``graph`` in stage 1).
    """
    container = SubgraphContainer()
    local_frequency = FrequencyVector(graph.num_nodes, frequency.threshold)
    local_frequency.counts = frequency.counts[node_ids].copy()

    for local_node in range(graph.num_nodes):
        if generator.random() >= config.sampling_rate:
            continue
        if local_frequency.is_saturated(local_node):
            continue
        nodes = frequency_walk(
            graph,
            local_frequency,
            local_node,
            subgraph_size,
            walk_length=config.walk_length,
            restart_probability=config.restart_probability,
            decay=config.decay,
            rng=generator,
            direction=config.direction,
        )
        if nodes is None:
            continue
        local_nodes = np.asarray(nodes, dtype=np.int64)
        original_nodes = node_ids[local_nodes]
        subgraph, _ = source_graph.subgraph(original_nodes)
        container.add(Subgraph(subgraph, original_nodes))
        local_frequency.record_subgraph(local_nodes)
        frequency.record_subgraph(original_nodes)
    return container


def extract_subgraphs_dual_stage(
    graph: Graph,
    config: DualStageSamplingConfig | None = None,
    rng: int | np.random.Generator | None = None,
) -> DualStageResult:
    """Run Algorithm 3 (SCS, then optionally BES) on ``graph``.

    Returns a :class:`DualStageResult`; the occurrence of every node across
    ``result.container`` is guaranteed ≤ ``config.threshold`` (this is the
    invariant the privacy analysis needs, and the frequency vector enforces
    it with hard errors rather than clipping).
    """
    config = config or DualStageSamplingConfig()
    config.validate()
    generator = ensure_rng(rng)

    frequency = FrequencyVector(graph.num_nodes, config.threshold)
    all_nodes = np.arange(graph.num_nodes, dtype=np.int64)

    # Stage 1 — Sensitivity-Constrained Sampling on the original graph.
    stage1 = _frequency_sampling_pass(
        graph, frequency, all_nodes, config.subgraph_size, config, generator, graph
    )

    container = SubgraphContainer()
    container.extend(stage1)
    stage2_count = 0

    if config.include_boundary:
        # Stage 2 — Boundary-Enhanced Sampling on the residual graph.
        remaining = frequency.available_nodes()
        if len(remaining) >= config.boundary_subgraph_size:
            residual, node_ids = graph.subgraph(remaining)
            stage2 = _frequency_sampling_pass(
                residual,
                frequency,
                node_ids,
                config.boundary_subgraph_size,
                config,
                generator,
                graph,
            )
            stage2_count = len(stage2)
            container.extend(stage2)

    return DualStageResult(
        container=container,
        frequency=frequency,
        stage1_count=len(stage1),
        stage2_count=stage2_count,
    )
