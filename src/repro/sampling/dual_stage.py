"""Algorithm 3 — the dual-stage adaptive frequency sampling scheme (PrivIM*).

Stage 1, **Sensitivity-Constrained Sampling (SCS)**: frequency-weighted RWR
over the *original* graph (no θ-projection), with Eq. 9 probabilities and
the global cap ``M``, giving occurrence bound ``N_g* = M``.

Stage 2, **Boundary-Enhanced Sampling (BES)**: nodes that hit the cap are
removed; the frequency sampler runs again on the residual graph with a
smaller subgraph size ``n / s``, harvesting boundary clusters that are too
small to fill full-size subgraphs.  Because the same frequency vector keeps
counting, the cap — and hence the privacy budget — is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SamplingError
from repro.graphs.graph import Graph
from repro.sampling.container import SubgraphContainer
from repro.sampling.frequency import FrequencyVector

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.sampling.parallel import SamplingStats


@dataclass
class DualStageSamplingConfig:
    """Parameters of Algorithm 3 (paper defaults from Section V-A).

    Attributes:
        subgraph_size: ``n``, stage-1 subgraph size.
        threshold: ``M``, the global frequency cap.
        decay: μ, Eq. 9's decay factor.
        sampling_rate: ``q``, start-node selection probability.
        walk_length: ``L``, per-walk step budget (paper: 200).
        restart_probability: τ (paper: 0.3).
        boundary_divisor: ``s`` — stage 2 uses subgraphs of size ``n / s``.
        include_boundary: run stage 2 (disable to get "PrivIM+SCS").
        direction: walk traversal direction.
        workers: worker processes for the sampling engine.  ``1`` (default)
            runs serially in-process and is the reference oracle; ``0``
            means one worker per CPU.  Any value produces bit-identical
            output for a fixed seed (see :mod:`repro.sampling.parallel`).
        chunk_size: start nodes per frequency-snapshot synchronisation
            chunk.  Part of the algorithm definition for the dual-stage
            sampler (walks inside a chunk see the same snapshot), so it
            must be held fixed when comparing worker counts; larger values
            expose more parallelism but raise the cap-hit rejection rate.
    """

    subgraph_size: int = 40
    threshold: int = 4
    decay: float = 1.0
    sampling_rate: float = 0.1
    walk_length: int = 200
    restart_probability: float = 0.3
    boundary_divisor: int = 2
    include_boundary: bool = True
    direction: str = "both"
    workers: int = 1
    chunk_size: int = 32

    def validate(self) -> None:
        """Raise :class:`SamplingError` on out-of-range parameters."""
        if self.subgraph_size < 1:
            raise SamplingError(f"subgraph_size must be >= 1, got {self.subgraph_size}")
        if self.threshold < 1:
            raise SamplingError(f"threshold M must be >= 1, got {self.threshold}")
        if self.decay < 0:
            raise SamplingError(f"decay mu must be >= 0, got {self.decay}")
        if not 0.0 < self.sampling_rate <= 1.0:
            raise SamplingError(f"sampling_rate must be in (0, 1], got {self.sampling_rate}")
        if self.walk_length < 1:
            raise SamplingError(f"walk_length must be >= 1, got {self.walk_length}")
        if not 0.0 <= self.restart_probability < 1.0:
            raise SamplingError("restart_probability must be in [0, 1)")
        if self.boundary_divisor < 1:
            raise SamplingError(
                f"boundary_divisor s must be >= 1, got {self.boundary_divisor}"
            )
        if self.workers < 0:
            raise SamplingError(f"workers must be >= 0, got {self.workers}")
        if self.chunk_size < 1:
            raise SamplingError(f"chunk_size must be >= 1, got {self.chunk_size}")

    @property
    def boundary_subgraph_size(self) -> int:
        """Stage-2 subgraph size ``max(n // s, 2)``."""
        return max(self.subgraph_size // self.boundary_divisor, 2)


@dataclass
class DualStageResult:
    """Output of :func:`extract_subgraphs_dual_stage`.

    Attributes:
        container: combined pool ``G_sub`` (stage 1 + stage 2).
        frequency: final frequency vector (indexed by original node id).
        stage1_count: subgraphs from SCS.
        stage2_count: subgraphs from BES.
        stats: engine counters (walks attempted / failed / cap-rejected,
            per-stage wall time) — see
            :class:`repro.sampling.parallel.SamplingStats`.
    """

    container: SubgraphContainer
    frequency: FrequencyVector
    stage1_count: int
    stage2_count: int
    stats: "SamplingStats | None" = None


def extract_subgraphs_dual_stage(
    graph: Graph,
    config: DualStageSamplingConfig | None = None,
    rng: int | np.random.Generator | None = None,
) -> DualStageResult:
    """Run Algorithm 3 (SCS, then optionally BES) on ``graph``.

    Returns a :class:`DualStageResult`; the occurrence of every node across
    ``result.container`` is guaranteed ≤ ``config.threshold`` (this is the
    invariant the privacy analysis needs, and both the coordinator's cap
    validation and the frequency vector enforce it with hard errors rather
    than clipping).  Both stages run on the chunk-synchronous engine in
    :mod:`repro.sampling.parallel`, so the result is bit-identical for any
    ``config.workers`` value under a fixed seed.
    """
    from repro.sampling.parallel import sample_dual_stage

    run = sample_dual_stage(graph, config or DualStageSamplingConfig(), rng)
    return DualStageResult(
        container=run.container,
        frequency=run.frequency,
        stage1_count=run.stage1_count,
        stage2_count=run.stage2_count,
        stats=run.stats,
    )
