"""Uniform random subgraph sampling (the EGN baseline's strategy).

EGN "randomly samples the subgraphs for training" (Section V-B): each
subgraph is the induced graph on ``n`` uniformly chosen nodes, with no
occurrence control whatsoever.  Its expected per-node occurrence is
``count · n / |V|`` but the *worst case* is ``count`` — which is what the
node-level sensitivity must assume, and why EGN needs the most noise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graphs.graph import Graph
from repro.sampling.container import Subgraph, SubgraphContainer
from repro.utils.rng import ensure_rng


def extract_subgraphs_random(
    graph: Graph,
    subgraph_size: int,
    count: int,
    rng: int | np.random.Generator | None = None,
) -> SubgraphContainer:
    """Sample ``count`` induced subgraphs on uniform node sets of size ``n``."""
    if subgraph_size < 1:
        raise SamplingError(f"subgraph_size must be >= 1, got {subgraph_size}")
    if subgraph_size > graph.num_nodes:
        raise SamplingError("subgraph_size cannot exceed the number of nodes")
    if count < 0:
        raise SamplingError(f"count must be >= 0, got {count}")
    generator = ensure_rng(rng)

    container = SubgraphContainer()
    for _ in range(count):
        nodes = generator.choice(graph.num_nodes, size=subgraph_size, replace=False)
        subgraph, node_map = graph.subgraph(nodes)
        container.add(Subgraph(subgraph, node_map))
    return container
