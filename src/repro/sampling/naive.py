"""Algorithm 1 — naive subgraph extraction on the θ-bounded graph.

Pipeline (Section III-B): project ``G`` to in-degree ≤ θ, then for every
node selected with sampling rate ``q`` run an RWR confined to the node's
r-hop ball, emitting a subgraph whenever ``n`` unique nodes are collected
within ``L`` steps.  Lemma 1 bounds any node's occurrences across the
output by ``N_g = Σ_{i=0..r} θ^i``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingError
from repro.graphs.graph import Graph
from repro.sampling.container import SubgraphContainer


@dataclass
class NaiveSamplingConfig:
    """Parameters of Algorithm 1 (paper defaults from Section V-A).

    Attributes:
        theta: maximum in-degree θ of the projected graph (paper: 10).
        subgraph_size: nodes per subgraph ``n``.
        hops: r — walks stay inside the start node's r-hop ball; should
            equal the GNN depth.
        sampling_rate: start-node selection probability ``q``
            (paper: 256 / |V_train|).
        walk_length: step budget ``L`` (paper: 200).
        restart_probability: RWR return probability τ (paper: 0.3).
        direction: walk traversal direction.  The default ``"out"`` is what
            Lemma 1's proof needs: a walk confined to the start node's
            out-direction r-hop ball can only capture node ``v`` when the
            start is one of ``v``'s ≤ Σθ^i ancestors in the θ-in-bounded
            graph.  ``"both"`` explores more structure but voids the
            occurrence bound (ancestor counts through out-edges are
            unbounded) — use it only with the dual-stage sampler, whose
            frequency cap enforces the bound directly.
        workers: worker processes for the sampling engine.  ``1`` (default)
            runs serially in-process and is the reference oracle; ``0``
            means one worker per CPU.  Any value produces bit-identical
            output for a fixed seed (see :mod:`repro.sampling.parallel`).
        chunk_size: start nodes per scheduling chunk.  Purely a scheduling
            knob for the naive sampler; results do not depend on it.
    """

    theta: int = 10
    subgraph_size: int = 40
    hops: int = 3
    sampling_rate: float = 0.1
    walk_length: int = 200
    restart_probability: float = 0.3
    direction: str = "out"
    workers: int = 1
    chunk_size: int = 32

    def validate(self) -> None:
        """Raise :class:`SamplingError` on out-of-range parameters."""
        if self.theta < 1:
            raise SamplingError(f"theta must be >= 1, got {self.theta}")
        if self.subgraph_size < 1:
            raise SamplingError(f"subgraph_size must be >= 1, got {self.subgraph_size}")
        if self.hops < 1:
            raise SamplingError(f"hops must be >= 1, got {self.hops}")
        if not 0.0 < self.sampling_rate <= 1.0:
            raise SamplingError(f"sampling_rate must be in (0, 1], got {self.sampling_rate}")
        if self.walk_length < 1:
            raise SamplingError(f"walk_length must be >= 1, got {self.walk_length}")
        if not 0.0 <= self.restart_probability < 1.0:
            raise SamplingError("restart_probability must be in [0, 1)")
        if self.workers < 0:
            raise SamplingError(f"workers must be >= 0, got {self.workers}")
        if self.chunk_size < 1:
            raise SamplingError(f"chunk_size must be >= 1, got {self.chunk_size}")


def extract_subgraphs_naive(
    graph: Graph,
    config: NaiveSamplingConfig | None = None,
    rng: int | np.random.Generator | None = None,
) -> tuple[SubgraphContainer, Graph]:
    """Run Algorithm 1 and return ``(container, projected_graph)``.

    The projected graph is returned as well because training must present
    the same θ-bounded topology to the GNN that the sensitivity analysis
    assumed.  Use :func:`repro.sampling.parallel.sample_naive` directly to
    also get the engine's :class:`~repro.sampling.parallel.SamplingStats`.
    """
    from repro.sampling.parallel import sample_naive

    run = sample_naive(graph, config or NaiveSamplingConfig(), rng)
    return run.container, run.projected
