"""Adaptive frequency machinery (Eq. 9) shared by both stages of Algorithm 3.

Each node carries a frequency value ``f_v`` — how many subgraphs it has
already joined.  During a walk, a neighbour's selection weight is

``e_v = 1 / (f_v + 1)^μ`` if ``f_v < M`` else ``0``,

normalised over the candidate set (Eq. 9).  Nodes that reached the global
threshold ``M`` can never be sampled again, which is what turns the
occurrence bound into the hard cap ``N_g* = M``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.utils.rng import ensure_rng


class FrequencyVector:
    """The occurrence counter ``f ∈ R^{|V|}`` of Algorithm 3.

    Attributes:
        counts: int64 occurrence counts, indexed by original node id.
        threshold: the global cap ``M``.
    """

    def __init__(self, num_nodes: int, threshold: int) -> None:
        if num_nodes < 0:
            raise SamplingError(f"num_nodes must be >= 0, got {num_nodes}")
        if threshold < 1:
            raise SamplingError(f"threshold M must be >= 1, got {threshold}")
        self.counts = np.zeros(num_nodes, dtype=np.int64)
        self.threshold = int(threshold)

    def __len__(self) -> int:
        return len(self.counts)

    def value(self, node: int) -> int:
        """Current frequency ``f_v``."""
        return int(self.counts[node])

    def is_saturated(self, node: int) -> bool:
        """Whether ``f_v`` has reached the cap ``M``."""
        return bool(self.counts[node] >= self.threshold)

    def saturated_nodes(self) -> np.ndarray:
        """All nodes with ``f_v = M`` (removed by BES, Algorithm 3 line 3)."""
        return np.flatnonzero(self.counts >= self.threshold)

    def available_nodes(self) -> np.ndarray:
        """All nodes still below the cap."""
        return np.flatnonzero(self.counts < self.threshold)

    def record_subgraph(self, nodes: np.ndarray) -> None:
        """Count one subgraph membership for every node in ``nodes``.

        Raises if any node would exceed ``M`` — that would void the
        sensitivity bound, so it is a hard error, not a warning.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        if np.any(self.counts[nodes] >= self.threshold):
            raise SamplingError(
                "recording this subgraph would push a node past the threshold M"
            )
        self.counts[nodes] += 1

    def max_frequency(self) -> int:
        """Largest recorded frequency (the empirical ``N_g*``)."""
        return int(self.counts.max()) if len(self.counts) else 0


def adaptive_neighbor_probabilities(
    frequencies: np.ndarray,
    threshold: int,
    decay: float,
) -> np.ndarray:
    """Eq. 9's unnormalised weights ``e_v`` for a candidate set.

    Args:
        frequencies: ``f_v`` for each candidate.
        threshold: global cap ``M``.
        decay: decay factor μ ≥ 0; μ = 0 degrades to uniform-over-available.

    Returns:
        Normalised probabilities (sums to 1), or an all-zero vector when
        every candidate is saturated.
    """
    if decay < 0:
        raise SamplingError(f"decay mu must be >= 0, got {decay}")
    freq = np.asarray(frequencies, dtype=np.float64)
    weights = np.where(freq < threshold, 1.0 / np.power(freq + 1.0, decay), 0.0)
    total = weights.sum()
    if total <= 0:
        return np.zeros_like(weights)
    return weights / total


def make_frequency_chooser(frequency: FrequencyVector, decay: float):
    """A :func:`random_walk_nodes` chooser implementing Eq. 9."""

    def chooser(
        _current: int, candidates: np.ndarray, generator: np.random.Generator
    ) -> int | None:
        if len(candidates) == 0:
            return None
        probabilities = adaptive_neighbor_probabilities(
            frequency.counts[candidates], frequency.threshold, decay
        )
        if probabilities.sum() <= 0:
            return None
        choice = generator.choice(len(candidates), p=probabilities)
        return int(candidates[int(choice)])

    return chooser


def frequency_walk(
    graph,
    frequency: FrequencyVector,
    start: int,
    target_size: int,
    *,
    walk_length: int,
    restart_probability: float,
    decay: float,
    rng: int | np.random.Generator | None = None,
    direction: str = "both",
):
    """One Eq. 9-weighted RWR; returns the node list or ``None``.

    Unlike the naive walk there is no r-hop whitelist: the frequency decay
    itself spreads sampling across the graph (Section IV-A).
    """
    from repro.sampling.random_walk import random_walk_nodes

    generator = ensure_rng(rng)
    return random_walk_nodes(
        graph,
        start,
        target_size,
        walk_length=walk_length,
        restart_probability=restart_probability,
        rng=generator,
        chooser=make_frequency_chooser(frequency, decay),
        direction=direction,
    )
