"""Process-pool subgraph-sampling engine with serial-equivalence guarantees.

Random-walk subgraph extraction dominates PrivIM's end-to-end wall time, so
this module fans the walks of Algorithm 1 (naive RWR) and Algorithm 3
(dual-stage SCS+BES) out over worker processes.  Three design rules keep
the privacy analysis intact:

1. **One child generator per start node.**  All walk randomness comes from
   :func:`repro.utils.rng.child_generator` keyed by ``(root_entropy,
   start_node)``, so a walk's outcome is independent of which worker runs
   it and in which order.  ``workers=1`` and ``workers=k`` therefore
   produce *bit-identical* :class:`SubgraphContainer`\\ s for a fixed seed
   — the serial path is the reference oracle for the pool.

2. **Read-only graph sharing.**  The walk graph is shipped to workers via
   ``fork`` (zero-copy page sharing of the CSR arrays built once in
   :mod:`repro.graphs.graph`); on platforms without ``fork`` the dual-CSR
   arrays are sent once per worker and rebuilt with :meth:`Graph.from_csr`
   — never pickled per task.

3. **Chunk-synchronous cap validation.**  The dual-stage sampler's Eq. 9
   probabilities depend on the shared frequency vector, which workers
   cannot mutate.  Start nodes are processed in fixed-size chunks: workers
   propose walks against a frequency *snapshot* (published through
   ``multiprocessing.shared_memory``), then the coordinator validates each
   proposal, in start-node order, against the *live*
   :class:`FrequencyVector` and rejects any walk that would push a node
   past the cap ``M``.  The occurrence bound ``N_g* = M`` therefore holds
   exactly regardless of worker count; staleness only costs rejected walks
   (reported in :class:`SamplingStats`), never privacy.

Chunk boundaries depend only on ``chunk_size`` — not on ``workers`` — so
the proposal/validation schedule, and hence the output, is identical for
every worker count.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SamplingError
from repro.obs import Observability, ensure_obs
from repro.graphs.degree import project_in_degree
from repro.graphs.graph import Graph
from repro.graphs.neighborhoods import k_hop_nodes
from repro.sampling.container import Subgraph, SubgraphContainer
from repro.sampling.frequency import FrequencyVector, make_frequency_chooser
from repro.sampling.random_walk import random_walk_nodes
from repro.utils.rng import child_generator, derive_root_entropy, ensure_rng

__all__ = [
    "SamplingStats",
    "NaiveSamplingRun",
    "DualStageRun",
    "resolve_workers",
    "sample_naive",
    "sample_dual_stage",
]


# --------------------------------------------------------------------------- #
# Statistics
# --------------------------------------------------------------------------- #
@dataclass
class SamplingStats:
    """Lightweight counters the engine keeps while sampling.

    Attributes:
        workers: resolved worker-process count (1 = in-process serial).
        chunk_size: start nodes per synchronisation chunk.
        starts_selected: nodes that passed the Bernoulli(q) selection.
        starts_skipped: selected starts not walked (r-hop ball smaller than
            ``n`` for the naive sampler; start already saturated in the
            snapshot for the dual-stage sampler).
        walks_attempted: walks actually run by workers.
        walks_failed: walks that exhausted the step budget ``L``.
        walks_rejected: proposals the coordinator rejected because a stale
            snapshot let them include a node at the cap ``M`` (dual-stage
            only — this is the price of chunk-level staleness).
        subgraphs_emitted: accepted subgraphs added to the container.
        stage_seconds: wall time per stage (``projection`` / ``walks`` for
            naive; ``stage1`` / ``stage2`` for dual-stage).  Every stage
            key of the algorithm that ran is always present — a skipped
            stage (e.g. BES on SCS-only configs) reads 0.0.
    """

    workers: int = 1
    chunk_size: int = 1
    starts_selected: int = 0
    starts_skipped: int = 0
    walks_attempted: int = 0
    walks_failed: int = 0
    walks_rejected: int = 0
    subgraphs_emitted: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def cap_hit_rate(self) -> float:
        """Fraction of attempted walks rejected by cap validation."""
        if self.walks_attempted == 0:
            return 0.0
        return self.walks_rejected / self.walks_attempted

    @property
    def total_seconds(self) -> float:
        """Sum of all recorded stage wall times."""
        return float(sum(self.stage_seconds.values()))


@dataclass
class NaiveSamplingRun:
    """Output of :func:`sample_naive`.

    ``container`` is whatever sink the caller supplied (the default
    in-memory :class:`SubgraphContainer`, or e.g. a
    :class:`~repro.sampling.store.SubgraphStoreWriter` awaiting
    ``finalize()``).
    """

    container: SubgraphContainer
    projected: Graph
    stats: SamplingStats


@dataclass
class DualStageRun:
    """Output of :func:`sample_dual_stage` (wrapped by ``DualStageResult``).

    ``container`` is the caller-supplied sink (see
    :class:`NaiveSamplingRun`); in-memory container by default.
    """

    container: SubgraphContainer
    frequency: FrequencyVector
    stage1_count: int
    stage2_count: int
    stats: SamplingStats


def resolve_workers(workers: int) -> int:
    """Resolve a config ``workers`` value (0 = one per CPU) to a count ≥ 1."""
    if workers < 0:
        raise SamplingError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        return max(os.cpu_count() or 1, 1)
    return workers


# --------------------------------------------------------------------------- #
# Worker-side state and proposal tasks
# --------------------------------------------------------------------------- #
# Populated by _worker_init — in the parent for the serial path, in each
# worker process (via fork inheritance or the pool initializer) otherwise.
_STATE: dict = {}


class _SnapshotFrequency:
    """Duck-typed read-only stand-in for :class:`FrequencyVector`.

    Workers only need ``counts`` / ``threshold`` for the Eq. 9 chooser; the
    live vector (and its hard-error recording) stays with the coordinator.
    """

    __slots__ = ("counts", "threshold")

    def __init__(self, counts: np.ndarray, threshold: int) -> None:
        self.counts = counts
        self.threshold = int(threshold)


def _attach_shared_memory(name: str):
    """Attach to an existing shared-memory segment without tracking it.

    The coordinator owns the segment's lifetime (create + unlink); if the
    attaching worker also registered it with the resource tracker, the
    tracker — shared with the parent under ``fork`` — would receive
    duplicate unregister/unlink messages and spew KeyError noise at exit.
    Python 3.13+ exposes ``track=False`` for exactly this; earlier versions
    need the registration call suppressed during attach.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register

    def _skip_shared_memory(resource_name, rtype):
        if rtype != "shared_memory":
            original_register(resource_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _worker_init(graph, csr_payload, snapshot_spec) -> None:
    """Install the shared walk graph and frequency snapshot in this process.

    Exactly one of ``graph`` (fork: inherited zero-copy) and ``csr_payload``
    (spawn: dual-CSR arrays, rebuilt without re-sorting) is non-``None``.
    ``snapshot_spec`` is ``None`` (naive sampler), ``("array", arr)``
    (serial path) or ``("shm", name, length)`` (pool path).
    """
    if graph is None and csr_payload is not None:
        num_nodes, out_csr, in_csr, directed = csr_payload
        graph = Graph.from_csr(num_nodes, out_csr, in_csr, directed=directed)
    _STATE["graph"] = graph
    _STATE["snapshot"] = None
    _STATE["shm"] = None
    if snapshot_spec is not None:
        kind = snapshot_spec[0]
        if kind == "array":
            _STATE["snapshot"] = snapshot_spec[1]
        else:
            shm = _attach_shared_memory(snapshot_spec[1])
            _STATE["shm"] = shm
            _STATE["snapshot"] = np.ndarray(
                (snapshot_spec[2],), dtype=np.int64, buffer=shm.buf
            )


def _propose_naive_chunk(task):
    """Walk a chunk of start nodes for Algorithm 1 (no shared state).

    Returns ``[(start, nodes-or-None, skipped), ...]`` in start order, where
    ``skipped`` flags starts whose r-hop ball is smaller than ``n``.
    """
    nodes, root, params = task
    subgraph_size, hops, walk_length, restart_probability, direction = params
    graph = _STATE["graph"]
    out = []
    for node in nodes:
        node = int(node)
        generator = child_generator(root, node)
        ball = k_hop_nodes(graph, node, hops, direction=direction)
        if len(ball) < subgraph_size:
            out.append((node, None, True))
            continue
        walked = random_walk_nodes(
            graph,
            node,
            subgraph_size,
            walk_length=walk_length,
            restart_probability=restart_probability,
            rng=generator,
            allowed=ball,
            direction=direction,
        )
        out.append((node, walked, False))
    return out


def _propose_frequency_chunk(task):
    """Walk a chunk of start nodes for Algorithm 3 against a snapshot.

    ``task`` may carry an explicit snapshot array (no-shared-memory
    fallback); otherwise the process-local snapshot view is used.  Returns
    ``[(start, nodes-or-None, skipped), ...]``; ``skipped`` flags starts
    already saturated in the snapshot.
    """
    nodes, root, params, snapshot = task
    subgraph_size, walk_length, restart_probability, decay, threshold, direction = params
    graph = _STATE["graph"]
    if snapshot is None:
        snapshot = _STATE["snapshot"]
    frequency = _SnapshotFrequency(snapshot, threshold)
    chooser = make_frequency_chooser(frequency, decay)
    out = []
    for node in nodes:
        node = int(node)
        if snapshot[node] >= threshold:
            out.append((node, None, True))
            continue
        generator = child_generator(root, node)
        walked = random_walk_nodes(
            graph,
            node,
            subgraph_size,
            walk_length=walk_length,
            restart_probability=restart_probability,
            rng=generator,
            chooser=chooser,
            direction=direction,
        )
        out.append((node, walked, False))
    return out


# --------------------------------------------------------------------------- #
# Runtime: serial in-process execution or a forked process pool
# --------------------------------------------------------------------------- #
class _SamplingRuntime:
    """Runs proposal tasks either in-process or on a process pool.

    The runtime also owns the frequency-snapshot channel: a plain array for
    the serial path, a ``SharedMemory`` segment the coordinator rewrites
    between chunks for the pool path (falling back to shipping the snapshot
    inside each task if shared memory is unavailable).
    """

    def __init__(self, graph: Graph, workers: int, snapshot_len: int | None) -> None:
        self._workers = workers
        self._pool = None
        self._shm = None
        self.snapshot: np.ndarray | None = None
        self._ship_snapshot = False

        snapshot_spec = None
        if snapshot_len is not None:
            if workers > 1:
                try:
                    from multiprocessing import shared_memory

                    self._shm = shared_memory.SharedMemory(
                        create=True, size=max(8 * snapshot_len, 8)
                    )
                    self.snapshot = np.ndarray(
                        (snapshot_len,), dtype=np.int64, buffer=self._shm.buf
                    )
                    snapshot_spec = ("shm", self._shm.name, snapshot_len)
                except Exception:
                    self.snapshot = np.zeros(snapshot_len, dtype=np.int64)
                    self._ship_snapshot = True
            else:
                self.snapshot = np.zeros(snapshot_len, dtype=np.int64)
                snapshot_spec = ("array", self.snapshot)

        if workers > 1:
            methods = multiprocessing.get_all_start_methods()
            if "fork" in methods:
                context = multiprocessing.get_context("fork")
                initargs = (graph, None, snapshot_spec)
            else:  # pragma: no cover - non-fork platforms
                context = multiprocessing.get_context()
                payload = (graph.num_nodes, graph.out_csr(), graph.in_csr(), graph.is_directed)
                initargs = (None, payload, snapshot_spec)
            self._pool = context.Pool(
                processes=workers, initializer=_worker_init, initargs=initargs
            )
        else:
            _worker_init(graph, None, snapshot_spec)

    def write_snapshot(self, counts: np.ndarray) -> None:
        """Publish the live frequency counts to the workers' snapshot."""
        self.snapshot[:] = counts

    def snapshot_for_task(self) -> np.ndarray | None:
        """Snapshot to embed in tasks (fallback transport only)."""
        if self._ship_snapshot:
            return self.snapshot.copy()
        return None

    def map(self, fn, tasks: list) -> list:
        """Run ``fn`` over ``tasks`` preserving order."""
        if self._pool is None:
            return [fn(task) for task in tasks]
        return self._pool.map(fn, tasks)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
        if self._shm is not None:
            self._shm.close()
            self._shm.unlink()
            self._shm = None
        _STATE.clear()

    def __enter__(self) -> "_SamplingRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _publish_stats(obs: Observability, algorithm: str, stats: SamplingStats) -> None:
    """Mirror the engine counters into the metrics registry and run record."""
    if not obs.enabled:
        return
    obs.counter("sampling.starts_selected").inc(stats.starts_selected)
    obs.counter("sampling.starts_skipped").inc(stats.starts_skipped)
    obs.counter("sampling.walks_attempted").inc(stats.walks_attempted)
    obs.counter("sampling.walks_failed").inc(stats.walks_failed)
    obs.counter("sampling.walks_rejected").inc(stats.walks_rejected)
    obs.counter("sampling.subgraphs_emitted").inc(stats.subgraphs_emitted)
    obs.gauge("sampling.cap_hit_rate").set(stats.cap_hit_rate)
    obs.event(
        "sampling",
        algorithm=algorithm,
        workers=stats.workers,
        chunk_size=stats.chunk_size,
        starts_selected=stats.starts_selected,
        starts_skipped=stats.starts_skipped,
        walks_attempted=stats.walks_attempted,
        walks_failed=stats.walks_failed,
        walks_rejected=stats.walks_rejected,
        subgraphs_emitted=stats.subgraphs_emitted,
        cap_hit_rate=stats.cap_hit_rate,
        stage_seconds=dict(stats.stage_seconds),
    )


def _chunks(values: np.ndarray, chunk_size: int) -> list[np.ndarray]:
    """Split ``values`` into contiguous chunks of ``chunk_size``."""
    return [values[i : i + chunk_size] for i in range(0, len(values), chunk_size)]


def _split_for_workers(chunk: np.ndarray, workers: int) -> list[np.ndarray]:
    """Split one chunk into per-worker slices (order-preserving)."""
    parts = min(workers, len(chunk))
    if parts <= 1:
        return [chunk]
    return [part for part in np.array_split(chunk, parts) if len(part)]


# --------------------------------------------------------------------------- #
# Algorithm 1 — naive RWR sampling
# --------------------------------------------------------------------------- #
def sample_naive(
    graph: Graph,
    config,
    rng: int | np.random.Generator | None = None,
    *,
    obs: Observability | None = None,
    sink=None,
) -> NaiveSamplingRun:
    """Run Algorithm 1 with ``config.workers`` processes.

    ``config`` is a :class:`repro.sampling.naive.NaiveSamplingConfig`.  Walks
    are embarrassingly parallel here (no shared frequency state): the master
    generator draws the θ-projection, the Bernoulli(q) selection mask, and
    one root entropy value; each selected start then walks under its own
    child generator, so the output is invariant to the worker count.

    ``obs`` receives ``sampling.projection`` / ``sampling.walks`` stage
    spans and the engine counters; the observability layer never touches
    the randomness, so it cannot perturb the sampled container.

    ``sink`` is where accepted subgraphs are emitted — anything with the
    container's ``add(Subgraph)`` shape.  Passing a
    :class:`~repro.sampling.store.SubgraphStoreWriter` spills the pool
    straight to disk, keeping sampler memory flat in the pool size.  The
    emitted *sequence* is identical for every sink, so a store-backed run
    trains bit-identically to an in-memory one.
    """
    config.validate()
    obs = ensure_obs(obs)
    generator = ensure_rng(rng)
    workers = resolve_workers(config.workers)
    stats = SamplingStats(workers=workers, chunk_size=config.chunk_size)

    with obs.span("sampling.projection") as span:
        projected = project_in_degree(graph, config.theta, generator)
    stats.stage_seconds["projection"] = span.seconds

    selected = np.flatnonzero(
        generator.random(projected.num_nodes) < config.sampling_rate
    )
    root = derive_root_entropy(generator)
    stats.starts_selected = int(len(selected))

    container = SubgraphContainer() if sink is None else sink
    with obs.span("sampling.walks") as span:
        if len(selected):
            params = (
                config.subgraph_size,
                config.hops,
                config.walk_length,
                config.restart_probability,
                config.direction,
            )
            tasks = [
                (chunk, root, params) for chunk in _chunks(selected, config.chunk_size)
            ]
            with _SamplingRuntime(projected, workers, None) as runtime:
                for proposals in runtime.map(_propose_naive_chunk, tasks):
                    for _node, nodes, skipped in proposals:
                        if skipped:
                            stats.starts_skipped += 1
                            continue
                        stats.walks_attempted += 1
                        if nodes is None:
                            stats.walks_failed += 1
                            continue
                        subgraph, node_map = projected.subgraph(nodes)
                        container.add(Subgraph(subgraph, node_map))
                        stats.subgraphs_emitted += 1
    stats.stage_seconds["walks"] = span.seconds
    _publish_stats(obs, "naive", stats)
    return NaiveSamplingRun(container=container, projected=projected, stats=stats)


# --------------------------------------------------------------------------- #
# Algorithm 3 — dual-stage SCS + BES sampling
# --------------------------------------------------------------------------- #
def _frequency_pass(
    walk_graph: Graph,
    source_graph: Graph,
    frequency: FrequencyVector,
    node_ids: np.ndarray,
    subgraph_size: int,
    config,
    generator: np.random.Generator,
    workers: int,
    container: SubgraphContainer,
    stats: SamplingStats,
) -> int:
    """One chunk-synchronous ``FreqSampling`` pass (Algorithm 3, lines 9–28).

    ``walk_graph`` uses local ids; ``node_ids[i]`` maps local node ``i``
    back to the original id the global ``frequency`` uses; ``source_graph``
    provides the edges of emitted subgraphs.  Workers propose walks against
    a snapshot of the local counts; this coordinator then validates each
    proposal in start order against the live counts — a proposal touching
    any node at the cap is rejected outright, so ``N_g* = M`` holds exactly.
    Returns the number of subgraphs emitted.
    """
    live_counts = frequency.counts[node_ids].copy()
    selected = np.flatnonzero(
        generator.random(walk_graph.num_nodes) < config.sampling_rate
    )
    root = derive_root_entropy(generator)
    stats.starts_selected += int(len(selected))
    if not len(selected):
        return 0

    params = (
        subgraph_size,
        config.walk_length,
        config.restart_probability,
        config.decay,
        config.threshold,
        config.direction,
    )
    emitted = 0
    with _SamplingRuntime(walk_graph, workers, walk_graph.num_nodes) as runtime:
        for chunk in _chunks(selected, config.chunk_size):
            runtime.write_snapshot(live_counts)
            shipped = runtime.snapshot_for_task()
            tasks = [
                (part, root, params, shipped)
                for part in _split_for_workers(chunk, workers)
            ]
            proposals = [
                proposal
                for task_result in runtime.map(_propose_frequency_chunk, tasks)
                for proposal in task_result
            ]
            for _node, nodes, skipped in proposals:
                if skipped:
                    stats.starts_skipped += 1
                    continue
                stats.walks_attempted += 1
                if nodes is None:
                    stats.walks_failed += 1
                    continue
                local_nodes = np.asarray(nodes, dtype=np.int64)
                if np.any(live_counts[local_nodes] >= config.threshold):
                    stats.walks_rejected += 1
                    continue
                original_nodes = node_ids[local_nodes]
                subgraph, _ = source_graph.subgraph(original_nodes)
                container.add(Subgraph(subgraph, original_nodes))
                live_counts[local_nodes] += 1
                frequency.record_subgraph(original_nodes)
                emitted += 1
    stats.subgraphs_emitted += emitted
    return emitted


def sample_dual_stage(
    graph: Graph,
    config,
    rng: int | np.random.Generator | None = None,
    *,
    obs: Observability | None = None,
    sink=None,
) -> DualStageRun:
    """Run Algorithm 3 with ``config.workers`` processes.

    ``config`` is a :class:`repro.sampling.dual_stage.DualStageSamplingConfig`.
    Both stages use the chunk-synchronous propose/validate scheme, so the
    occurrence cap ``M`` is enforced exactly by the coordinator for every
    worker count, and the output is bit-identical across worker counts.

    ``obs`` receives ``sampling.stage1`` / ``sampling.stage2`` stage spans
    and the engine counters.  ``stats.stage_seconds`` always carries *both*
    stage keys — ``stage2`` is 0.0 on SCS-only configs — so timing
    consumers never have to guard a missing key.

    ``sink`` redirects emitted subgraphs (see :func:`sample_naive`) — the
    cap bookkeeping lives in the coordinator's :class:`FrequencyVector`,
    never in the sink, so spilling to disk cannot perturb validation.
    """
    config.validate()
    obs = ensure_obs(obs)
    generator = ensure_rng(rng)
    workers = resolve_workers(config.workers)
    stats = SamplingStats(workers=workers, chunk_size=config.chunk_size)
    # Both stage keys are always present (a skipped BES stage reads 0.0);
    # downstream timing consumers rely on this invariant.
    stats.stage_seconds["stage1"] = 0.0
    stats.stage_seconds["stage2"] = 0.0

    frequency = FrequencyVector(graph.num_nodes, config.threshold)
    all_nodes = np.arange(graph.num_nodes, dtype=np.int64)
    container = SubgraphContainer() if sink is None else sink

    with obs.span("sampling.stage1") as span:
        stage1_count = _frequency_pass(
            graph,
            graph,
            frequency,
            all_nodes,
            config.subgraph_size,
            config,
            generator,
            workers,
            container,
            stats,
        )
    stats.stage_seconds["stage1"] = span.seconds

    stage2_count = 0
    if config.include_boundary:
        with obs.span("sampling.stage2") as span:
            remaining = frequency.available_nodes()
            if len(remaining) >= config.boundary_subgraph_size:
                residual, node_ids = graph.subgraph(remaining)
                stage2_count = _frequency_pass(
                    residual,
                    graph,
                    frequency,
                    node_ids,
                    config.boundary_subgraph_size,
                    config,
                    generator,
                    workers,
                    container,
                    stats,
                )
        stats.stage_seconds["stage2"] = span.seconds

    _publish_stats(obs, "dual_stage", stats)
    return DualStageRun(
        container=container,
        frequency=frequency,
        stage1_count=stage1_count,
        stage2_count=stage2_count,
        stats=stats,
    )
