"""Random walk with restart (RWR), the engine of both sampling schemes.

Algorithm 1 and Algorithm 3's ``FreqSampling`` share the same walk skeleton
— start at ``v0``, at each step restart to ``v0`` with probability τ,
otherwise move to a neighbour, collect unique visited nodes, succeed when
``n`` distinct nodes are gathered within ``L`` steps — and differ only in
how the next neighbour is chosen.  :func:`random_walk_nodes` factors the
skeleton out and takes the neighbour chooser as a callable.

On direction: the paper's graphs are directed.  Message passing aggregates
over *in*-neighbours while diffusion spreads over *out*-neighbours, and the
walk must discover both kinds of structure, so by default it treats arcs as
traversable in both directions (``direction="both"``); the strictly
out-directed walk is available for ablation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SamplingError
from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng

NeighborChooser = Callable[[int, np.ndarray, np.random.Generator], int | None]


def walk_neighbors(graph: Graph, node: int, direction: str) -> np.ndarray:
    """Neighbours reachable in one walk step from ``node``."""
    if direction == "out":
        return graph.out_neighbors(node)
    if direction == "in":
        return graph.in_neighbors(node)
    if direction == "both":
        merged = np.concatenate([graph.out_neighbors(node), graph.in_neighbors(node)])
        return np.unique(merged)
    raise SamplingError(f"direction must be 'out', 'in', or 'both', got {direction!r}")


def uniform_chooser(
    _current: int, candidates: np.ndarray, generator: np.random.Generator
) -> int | None:
    """Algorithm 1's neighbour rule: uniform over the candidate set."""
    if len(candidates) == 0:
        return None
    return int(candidates[int(generator.integers(0, len(candidates)))])


def random_walk_nodes(
    graph: Graph,
    start: int,
    target_size: int,
    *,
    walk_length: int,
    restart_probability: float,
    rng: int | np.random.Generator | None = None,
    allowed: set[int] | None = None,
    chooser: NeighborChooser = uniform_chooser,
    direction: str = "both",
) -> list[int] | None:
    """Collect ``target_size`` unique nodes by RWR, or ``None`` on failure.

    Args:
        graph: graph to walk on.
        start: the start node ``v0``.
        target_size: subgraph size ``n``.
        walk_length: step budget ``L``.
        restart_probability: τ, chance of teleporting back to ``v0``.
        rng: seed or generator.
        allowed: optional whitelist (Algorithm 1 passes the r-hop ball
            ``N_r(v0)``); candidates outside it are filtered out.
        chooser: picks the next node from the candidate neighbours; return
            ``None`` to signal "stuck", which forces a restart to ``v0``.
        direction: walk traversal direction (see module docstring).

    Returns:
        The visited node list (start first, insertion order) when
        ``target_size`` nodes were gathered within ``walk_length`` steps,
        otherwise ``None`` — Algorithm 1 only admits complete subgraphs.
    """
    if not 0 <= start < graph.num_nodes:
        raise SamplingError(f"start node {start} out of range")
    if target_size < 1:
        raise SamplingError(f"target_size must be >= 1, got {target_size}")
    if walk_length < 1:
        raise SamplingError(f"walk_length must be >= 1, got {walk_length}")
    if not 0.0 <= restart_probability < 1.0:
        raise SamplingError(
            f"restart_probability must be in [0, 1), got {restart_probability}"
        )
    generator = ensure_rng(rng)

    visited: dict[int, None] = {start: None}  # ordered set
    if target_size == 1:
        return [start]
    current = start
    for _ in range(walk_length):
        if generator.random() < restart_probability:
            current = start
        candidates = walk_neighbors(graph, current, direction)
        if allowed is not None and len(candidates):
            mask = np.fromiter(
                (int(c) in allowed for c in candidates), dtype=bool, count=len(candidates)
            )
            candidates = candidates[mask]
        next_node = chooser(current, candidates, generator)
        if next_node is None:
            # Dead end under the constraints: teleport home and try again.
            current = start
            continue
        current = next_node
        if next_node not in visited:
            visited[next_node] = None
            if len(visited) == target_size:
                return list(visited)
    return None
