"""Subgraphs, the in-memory pool ``G_sub``, and the ``SubgraphSource`` API.

A :class:`Subgraph` is an induced graph with the mapping back to original
node ids; the :class:`SubgraphContainer` is the pool Algorithm 2 draws its
mini-batches from.  The container can also *audit itself*: it counts how
often each original node occurs across subgraphs, which is exactly the
quantity the sensitivity bounds (Lemmas 1–2) cap — the test suite asserts
the theoretical bounds empirically on every sampler.

Training no longer requires the pool to live in RAM: anything satisfying
the :class:`SubgraphSource` protocol (this module's container, or the
mmap-backed :class:`repro.sampling.store.SubgraphStore`) can feed
:class:`repro.core.trainer.DPGNNTrainer`.  The occurrence audit is shared
through :func:`accumulate_occurrence_counts` so both implementations count
identically.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import SamplingError
from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng

__all__ = [
    "Subgraph",
    "SubgraphContainer",
    "SubgraphSource",
    "accumulate_occurrence_counts",
]


class Subgraph:
    """An induced subgraph plus its mapping to original node ids.

    Attributes:
        graph: the induced :class:`Graph` with local ids ``0..n-1``.
        node_map: ``node_map[i]`` is the original id of local node ``i``.
            Original ids must be unique: a duplicate would mean one original
            node occupies two local slots, silently doubling its gradient
            contribution while the occurrence audit counts it once — a
            privacy-accounting hazard, so it is rejected at construction.
    """

    __slots__ = ("graph", "node_map")

    def __init__(self, graph: Graph, node_map: np.ndarray) -> None:
        node_map = np.asarray(node_map, dtype=np.int64)
        if len(node_map) != graph.num_nodes:
            raise SamplingError(
                f"node_map length {len(node_map)} != subgraph nodes {graph.num_nodes}"
            )
        if len(np.unique(node_map)) != len(node_map):
            raise SamplingError(
                "node_map contains duplicate original node ids; every local "
                "node must map to a distinct original node or the sensitivity "
                "audit undercounts its occurrences"
            )
        self.graph = graph
        self.node_map = node_map

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    def __repr__(self) -> str:
        return f"Subgraph(num_nodes={self.num_nodes}, num_arcs={self.graph.num_edges})"


def accumulate_occurrence_counts(
    node_maps: Iterable[np.ndarray], num_original_nodes: int
) -> np.ndarray:
    """Per-node occurrence counts across an iterable of ``node_map`` arrays.

    This is the one shared implementation of the sensitivity audit: the
    maximum of the returned vector is the *empirical* ``N_g`` the privacy
    analysis bounds.  Counting uses ``np.bincount`` — a fancy-indexed
    ``counts[node_map] += 1`` would silently undercount any node appearing
    twice in one map (numpy applies the increment once per unique index),
    which is exactly the failure mode :class:`Subgraph` now rejects, and
    which this accumulator is additionally immune to.

    ``node_maps`` may be lazily materialised views (e.g. mmap slices from
    an on-disk store); maps are batched before each ``bincount`` so the
    audit never needs the whole pool in memory at once.
    """
    if num_original_nodes < 0:
        raise SamplingError(
            f"num_original_nodes must be >= 0, got {num_original_nodes}"
        )
    counts = np.zeros(num_original_nodes, dtype=np.int64)
    batch: list[np.ndarray] = []
    batch_entries = 0
    # Flush roughly every 64Ki ids: one bincount per ~0.5 MB of input keeps
    # the temporary concatenation small while amortising the per-call cost.
    flush_threshold = 1 << 16
    for node_map in node_maps:
        array = np.asarray(node_map)
        if array.size == 0:
            continue
        batch.append(array)
        batch_entries += array.size
        if batch_entries >= flush_threshold:
            counts += np.bincount(
                np.concatenate(batch), minlength=num_original_nodes
            )
            batch.clear()
            batch_entries = 0
    if batch:
        counts += np.bincount(np.concatenate(batch), minlength=num_original_nodes)
    return counts


@runtime_checkable
class SubgraphSource(Protocol):
    """What the trainer needs from a pool of subgraphs (Module 1 output).

    Implementations: :class:`SubgraphContainer` (everything in RAM) and
    :class:`repro.sampling.store.SubgraphStore` (mmap-backed on-disk
    shards).  ``in_memory`` tells consumers whether random access is free
    (container) or each ``__getitem__`` materialises a record from disk —
    the trainer bounds its compute-plan cache for the latter so memory
    stays flat regardless of pool size.
    """

    #: Whether subgraphs are resident Python objects (True) or records
    #: materialised on demand from storage (False).
    in_memory: bool

    def __len__(self) -> int: ...

    def __getitem__(self, index: int) -> Subgraph: ...

    def __iter__(self) -> Iterator[Subgraph]: ...

    def occurrence_counts(self, num_original_nodes: int) -> np.ndarray: ...

    def max_occurrence(self, num_original_nodes: int) -> int: ...


class SubgraphContainer:
    """The pool ``G_sub`` of training subgraphs (paper's Module 1 output)."""

    #: Subgraphs are resident objects; see :class:`SubgraphSource`.
    in_memory = True

    def __init__(self, subgraphs: Sequence[Subgraph] = ()) -> None:
        self._subgraphs: list[Subgraph] = list(subgraphs)

    def add(self, subgraph: Subgraph) -> None:
        """Append one subgraph to the pool."""
        self._subgraphs.append(subgraph)

    def extend(self, other: "SubgraphContainer") -> None:
        """Append every subgraph of ``other`` (Algorithm 3, line 7)."""
        self._subgraphs.extend(other._subgraphs)

    def __len__(self) -> int:
        return len(self._subgraphs)

    def __iter__(self) -> Iterator[Subgraph]:
        return iter(self._subgraphs)

    def __getitem__(self, index: int) -> Subgraph:
        return self._subgraphs[index]

    def sample_batch(
        self, batch_size: int, rng: int | np.random.Generator | None = None
    ) -> list[Subgraph]:
        """Uniformly sample ``batch_size`` subgraphs without replacement.

        This is Algorithm 2, line 3.  Raises if the pool is smaller than the
        batch, which would silently break the privacy accounting otherwise.

        Determinism contract: for a fixed generator state the picks are a
        pure function of ``(state, len(self), batch_size)`` — numpy's
        ``Generator.choice`` stream is stable across the versions CI pins
        (NEP 19 stream-compatibility policy), and the degenerate
        ``batch_size == len(self)`` case still consumes the generator
        (returning a drawn permutation, not a shortcut copy of the pool),
        so interleaving full-pool and partial batches stays reproducible.
        Mutating the pool (``add``/``extend``) between calls changes
        ``len(self)`` and therefore the picks; the trainer guards against
        exactly that happening mid-training.
        """
        if batch_size < 1:
            raise SamplingError(f"batch_size must be >= 1, got {batch_size}")
        if batch_size > len(self._subgraphs):
            raise SamplingError(
                f"batch_size {batch_size} exceeds container size {len(self._subgraphs)}"
            )
        generator = ensure_rng(rng)
        picks = generator.choice(len(self._subgraphs), size=batch_size, replace=False)
        return [self._subgraphs[int(i)] for i in picks]

    # ------------------------------------------------------------------ #
    # Sensitivity auditing
    # ------------------------------------------------------------------ #
    def occurrence_counts(self, num_original_nodes: int) -> np.ndarray:
        """How many subgraphs each original node appears in.

        The maximum of this vector is the *empirical* ``N_g`` the privacy
        analysis bounds; tests assert ``occurrence_counts().max() <= N_g``.
        """
        return accumulate_occurrence_counts(
            (subgraph.node_map for subgraph in self._subgraphs), num_original_nodes
        )

    def max_occurrence(self, num_original_nodes: int) -> int:
        """Maximum per-node occurrence across the pool (0 when empty)."""
        if not self._subgraphs:
            return 0
        return int(self.occurrence_counts(num_original_nodes).max())

    def coverage(self, num_original_nodes: int) -> float:
        """Fraction of original nodes appearing in at least one subgraph."""
        if num_original_nodes == 0:
            return 0.0
        counts = self.occurrence_counts(num_original_nodes)
        return float((counts > 0).mean())

    def __repr__(self) -> str:
        return f"SubgraphContainer(num_subgraphs={len(self._subgraphs)})"
