"""Subgraphs and the subgraph container ``G_sub``.

A :class:`Subgraph` is an induced graph with the mapping back to original
node ids; the :class:`SubgraphContainer` is the pool Algorithm 2 draws its
mini-batches from.  The container can also *audit itself*: it counts how
often each original node occurs across subgraphs, which is exactly the
quantity the sensitivity bounds (Lemmas 1–2) cap — the test suite asserts
the theoretical bounds empirically on every sampler.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import SamplingError
from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng


class Subgraph:
    """An induced subgraph plus its mapping to original node ids.

    Attributes:
        graph: the induced :class:`Graph` with local ids ``0..n-1``.
        node_map: ``node_map[i]`` is the original id of local node ``i``.
    """

    __slots__ = ("graph", "node_map")

    def __init__(self, graph: Graph, node_map: np.ndarray) -> None:
        node_map = np.asarray(node_map, dtype=np.int64)
        if len(node_map) != graph.num_nodes:
            raise SamplingError(
                f"node_map length {len(node_map)} != subgraph nodes {graph.num_nodes}"
            )
        self.graph = graph
        self.node_map = node_map

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    def __repr__(self) -> str:
        return f"Subgraph(num_nodes={self.num_nodes}, num_arcs={self.graph.num_edges})"


class SubgraphContainer:
    """The pool ``G_sub`` of training subgraphs (paper's Module 1 output)."""

    def __init__(self, subgraphs: Sequence[Subgraph] = ()) -> None:
        self._subgraphs: list[Subgraph] = list(subgraphs)

    def add(self, subgraph: Subgraph) -> None:
        """Append one subgraph to the pool."""
        self._subgraphs.append(subgraph)

    def extend(self, other: "SubgraphContainer") -> None:
        """Append every subgraph of ``other`` (Algorithm 3, line 7)."""
        self._subgraphs.extend(other._subgraphs)

    def __len__(self) -> int:
        return len(self._subgraphs)

    def __iter__(self) -> Iterator[Subgraph]:
        return iter(self._subgraphs)

    def __getitem__(self, index: int) -> Subgraph:
        return self._subgraphs[index]

    def sample_batch(
        self, batch_size: int, rng: int | np.random.Generator | None = None
    ) -> list[Subgraph]:
        """Uniformly sample ``batch_size`` subgraphs without replacement.

        This is Algorithm 2, line 3.  Raises if the pool is smaller than the
        batch, which would silently break the privacy accounting otherwise.
        """
        if batch_size < 1:
            raise SamplingError(f"batch_size must be >= 1, got {batch_size}")
        if batch_size > len(self._subgraphs):
            raise SamplingError(
                f"batch_size {batch_size} exceeds container size {len(self._subgraphs)}"
            )
        generator = ensure_rng(rng)
        picks = generator.choice(len(self._subgraphs), size=batch_size, replace=False)
        return [self._subgraphs[int(i)] for i in picks]

    # ------------------------------------------------------------------ #
    # Sensitivity auditing
    # ------------------------------------------------------------------ #
    def occurrence_counts(self, num_original_nodes: int) -> np.ndarray:
        """How many subgraphs each original node appears in.

        The maximum of this vector is the *empirical* ``N_g`` the privacy
        analysis bounds; tests assert ``occurrence_counts().max() <= N_g``.
        """
        counts = np.zeros(num_original_nodes, dtype=np.int64)
        for subgraph in self._subgraphs:
            counts[subgraph.node_map] += 1
        return counts

    def max_occurrence(self, num_original_nodes: int) -> int:
        """Maximum per-node occurrence across the pool (0 when empty)."""
        if not self._subgraphs:
            return 0
        return int(self.occurrence_counts(num_original_nodes).max())

    def coverage(self, num_original_nodes: int) -> float:
        """Fraction of original nodes appearing in at least one subgraph."""
        if num_original_nodes == 0:
            return 0.0
        counts = self.occurrence_counts(num_original_nodes)
        return float((counts > 0).mean())

    def __repr__(self) -> str:
        return f"SubgraphContainer(num_subgraphs={len(self._subgraphs)})"
