"""Append-only on-disk subgraph store with mmap-backed zero-copy reads.

The pool ``G_sub`` no longer has to fit in RAM: samplers spill subgraphs
straight to disk through :class:`SubgraphStoreWriter`, and training reads
them back through :class:`SubgraphStore`, a :class:`~repro.sampling.
container.SubgraphSource` whose memory footprint is flat in the number of
stored subgraphs (only the pages a batch touches are resident).

Layout — a store is a directory:

``shard-00000.bin`` …
    Fixed-layout binary shards in the shared ``write_checksummed`` framing
    (``REPRO-SGSHARD-v1 sha256=<hex> size=<bytes>\\n`` + payload).  The
    payload is a concatenation of records; each record is the raw
    little-endian bytes of, in order::

        node_map    int64[n]
        out_indptr  int64[n+1]
        out_indices int64[E]
        out_weights float64[E]
        in_indptr   int64[n+1]
        in_indices  int64[E]
        in_weights  float64[E]

    ``node_map`` comes first on purpose: the occurrence audit
    (``occurrence_counts``) reads only the first ``8·n`` bytes of every
    record, so auditing a store touches a small fraction of its pages.

``index.bin``
    ``REPRO-SGIDX-v1`` framing around a JSON header line (version,
    byte order, shard names + payload sizes, optional metadata) plus an
    ``int64[N, 5]`` table of ``(shard, offset, num_nodes, num_arcs,
    directed)`` per record.  Offsets are relative to the shard payload, so
    every record slice is computable without reading the shard.

Reads verify the index checksum eagerly and every shard checksum by
*streaming* (1 MiB chunks — never the whole file in memory), then mmap the
shards read-only; ``__getitem__`` wraps the mapped pages in
``np.frombuffer`` views and rebuilds the :class:`~repro.graphs.graph.
Graph` via ``Graph.from_csr`` without copying the CSR arrays.  Truncated,
bit-flipped, or misframed files are rejected with a clean
:class:`~repro.errors.SamplingError`.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import sys
from typing import Iterator

import numpy as np

from repro.core.checkpoint import read_checksummed, write_checksummed
from repro.errors import SamplingError, TrainingError
from repro.graphs.graph import Graph
from repro.sampling.container import (
    Subgraph,
    SubgraphContainer,
    accumulate_occurrence_counts,
)

SHARD_MAGIC = b"REPRO-SGSHARD-v1"
INDEX_MAGIC = b"REPRO-SGIDX-v1"
INDEX_NAME = "index.bin"

#: Default shard payload target; bounds the writer's buffered bytes, so it
#: is also the writer's peak memory regardless of how many subgraphs spill.
DEFAULT_SHARD_BYTES = 16 * 1024 * 1024

_TABLE_COLUMNS = 5  # (shard, offset, num_nodes, num_arcs, directed)

__all__ = [
    "SubgraphStore",
    "SubgraphStoreWriter",
    "DEFAULT_SHARD_BYTES",
    "merge_stores",
]


def _shard_name(shard_id: int) -> str:
    return f"shard-{shard_id:05d}.bin"


def _encode_record(subgraph: Subgraph) -> tuple[bytes, int, int]:
    """Record bytes plus ``(num_nodes, num_arcs)`` for the index row."""
    graph = subgraph.graph
    out_indptr, out_indices, out_weights = graph.out_csr()
    in_indptr, in_indices, in_weights = graph.in_csr()
    parts = (
        np.ascontiguousarray(subgraph.node_map, dtype=np.int64),
        np.ascontiguousarray(out_indptr, dtype=np.int64),
        np.ascontiguousarray(out_indices, dtype=np.int64),
        np.ascontiguousarray(out_weights, dtype=np.float64),
        np.ascontiguousarray(in_indptr, dtype=np.int64),
        np.ascontiguousarray(in_indices, dtype=np.int64),
        np.ascontiguousarray(in_weights, dtype=np.float64),
    )
    blob = b"".join(part.tobytes() for part in parts)
    return blob, graph.num_nodes, graph.num_edges


def record_nbytes(num_nodes: int, num_arcs: int) -> int:
    """Size of one record: every field is an 8-byte scalar."""
    return 8 * (3 * num_nodes + 2 + 4 * num_arcs)


class SubgraphStoreWriter:
    """Append-only writer; spill target for the samplers' emit path.

    Buffers at most ~``shard_bytes`` of encoded records, flushing each full
    shard atomically through ``write_checksummed`` — so writer memory is
    bounded by the shard size, not the pool size, and a crash mid-write
    never leaves a torn shard behind (the index is written last, by
    :meth:`finalize`; without it the directory is not a readable store).
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        shard_bytes: int = DEFAULT_SHARD_BYTES,
        meta: dict | None = None,
    ) -> None:
        if shard_bytes < 1:
            raise SamplingError(f"shard_bytes must be >= 1, got {shard_bytes}")
        self._path = os.fspath(path)
        if os.path.exists(os.path.join(self._path, INDEX_NAME)):
            raise SamplingError(
                f"{self._path} already holds a finalized subgraph store; "
                "refusing to append to it (stores are immutable once indexed)"
            )
        os.makedirs(self._path, exist_ok=True)
        self._shard_bytes = int(shard_bytes)
        self._meta = dict(meta or {})
        self._pending: list[bytes] = []
        self._pending_bytes = 0
        self._shards: list[dict] = []  # {"name", "payload_size"}
        self._rows: list[tuple[int, int, int, int, int]] = []
        self._finalized = False

    @property
    def path(self) -> str:
        return self._path

    def __len__(self) -> int:
        return len(self._rows)

    def add(self, subgraph: Subgraph) -> None:
        """Append one subgraph (samplers call this exactly like
        :meth:`SubgraphContainer.add`)."""
        if self._finalized:
            raise SamplingError("store writer is finalized; cannot add")
        blob, num_nodes, num_arcs = _encode_record(subgraph)
        self._rows.append(
            (
                len(self._shards),
                self._pending_bytes,
                num_nodes,
                num_arcs,
                int(subgraph.graph.is_directed),
            )
        )
        self._pending.append(blob)
        self._pending_bytes += len(blob)
        if self._pending_bytes >= self._shard_bytes:
            self._flush_shard()

    def extend(self, other: SubgraphContainer) -> None:
        """Append every subgraph of an in-memory container."""
        for subgraph in other:
            self.add(subgraph)

    def _flush_shard(self) -> None:
        if not self._pending:
            return
        name = _shard_name(len(self._shards))
        payload = b"".join(self._pending)
        write_checksummed(os.path.join(self._path, name), SHARD_MAGIC, payload)
        self._shards.append({"name": name, "payload_size": len(payload)})
        self._pending = []
        self._pending_bytes = 0

    def finalize(self) -> "SubgraphStore":
        """Flush the tail shard, write the index, and open the store."""
        if self._finalized:
            raise SamplingError("store writer is already finalized")
        self._flush_shard()
        header = {
            "version": 1,
            "byteorder": sys.byteorder,
            "num_records": len(self._rows),
            "shards": self._shards,
            "meta": self._meta,
        }
        table = np.asarray(self._rows, dtype=np.int64).reshape(
            len(self._rows), _TABLE_COLUMNS
        )
        payload = json.dumps(header).encode("utf-8") + b"\n" + table.tobytes()
        write_checksummed(os.path.join(self._path, INDEX_NAME), INDEX_MAGIC, payload)
        self._finalized = True
        return SubgraphStore(self._path)

    def set_meta(self, key: str, value) -> None:
        """Set one metadata entry before :meth:`finalize` (must be JSON
        serialisable; the sharded sink uses this to record each store's
        global emission sequence)."""
        if self._finalized:
            raise SamplingError("store writer is finalized; cannot set metadata")
        self._meta[str(key)] = value

    def abort(self) -> None:
        """Drop buffered records (already-flushed shards stay on disk but
        the directory is unreadable as a store without an index)."""
        self._pending = []
        self._pending_bytes = 0
        self._finalized = True


def _verify_and_map_shard(path: str, expected_payload: int) -> tuple[mmap.mmap, int]:
    """Stream-verify one shard's checksum, then mmap it read-only.

    Unlike ``read_checksummed`` this never holds the file in memory: the
    SHA-256 is fed 1 MiB at a time, keeping verification RSS flat no matter
    how large the shard is.  Returns ``(map, payload_offset)``.
    """
    try:
        handle = open(path, "rb")
    except FileNotFoundError:
        raise SamplingError(f"subgraph store shard missing: {path}") from None
    except OSError as error:
        raise SamplingError(f"cannot read subgraph store shard {path}: {error}") from error
    with handle:
        head = handle.read(len(SHARD_MAGIC) + 256)
        newline = head.find(b"\n")
        if not head.startswith(SHARD_MAGIC + b" ") or newline < 0:
            raise SamplingError(f"{path} is not a subgraph store shard")
        try:
            fields = dict(
                part.split(b"=", 1)
                for part in head[len(SHARD_MAGIC) + 1 : newline].split(b" ")
            )
            expected_digest = fields[b"sha256"].decode("ascii")
            expected_size = int(fields[b"size"])
        except (KeyError, ValueError) as error:
            raise SamplingError(f"{path} has a malformed shard header") from error
        if expected_size != expected_payload:
            raise SamplingError(
                f"{path} disagrees with the store index: index records "
                f"{expected_payload} payload bytes, shard header {expected_size}"
            )
        payload_offset = newline + 1
        handle.seek(payload_offset)
        digest = hashlib.sha256()
        total = 0
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            digest.update(chunk)
            total += len(chunk)
        if total != expected_size:
            raise SamplingError(
                f"{path} is truncated: header promises {expected_size} payload "
                f"bytes, file holds {total}"
            )
        if digest.hexdigest() != expected_digest:
            raise SamplingError(
                f"{path} failed its SHA-256 checksum; the shard is corrupt"
            )
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    return mapped, payload_offset


class SubgraphStore:
    """Read side: a :class:`SubgraphSource` over mmap-backed shards.

    ``__getitem__`` materialises a :class:`Subgraph` whose CSR arrays are
    zero-copy ``np.frombuffer`` views into the mapped shard (read-only;
    ``Graph.from_csr`` adopts them without copying), so a training batch
    touches only its own records' pages and the OS reclaims them under
    pressure.  The occurrence audit reads just the leading ``node_map``
    bytes of each record.  Pickles by path (workers re-open and re-verify),
    and is safe to close explicitly or via ``with``.
    """

    #: Records are materialised on demand from disk; see ``SubgraphSource``.
    in_memory = False

    def __init__(self, path: str | os.PathLike) -> None:
        self._path = os.fspath(path)
        index_path = os.path.join(self._path, INDEX_NAME)
        try:
            payload = read_checksummed(index_path, INDEX_MAGIC, kind="subgraph store index")
        except TrainingError as error:
            raise SamplingError(str(error)) from error
        newline = payload.find(b"\n")
        if newline < 0:
            raise SamplingError(f"{index_path} has no header line")
        try:
            header = json.loads(payload[:newline].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SamplingError(f"{index_path} has a malformed JSON header") from error
        if header.get("version") != 1:
            raise SamplingError(
                f"{index_path} has unsupported store version {header.get('version')!r}"
            )
        if header.get("byteorder") != sys.byteorder:
            raise SamplingError(
                f"{index_path} was written on a {header.get('byteorder')}-endian "
                f"machine; this machine is {sys.byteorder}-endian"
            )
        num_records = int(header.get("num_records", -1))
        table_bytes = payload[newline + 1 :]
        expected = num_records * _TABLE_COLUMNS * 8
        if num_records < 0 or len(table_bytes) != expected:
            raise SamplingError(
                f"{index_path} table is inconsistent: header promises "
                f"{num_records} records ({expected} bytes), payload holds "
                f"{len(table_bytes)}"
            )
        self._table = np.frombuffer(table_bytes, dtype=np.int64).reshape(
            num_records, _TABLE_COLUMNS
        )
        self.meta = dict(header.get("meta", {}))
        self._mmaps: list[mmap.mmap] = []
        self._payload_offsets: list[int] = []
        try:
            for shard in header.get("shards", ()):
                mapped, offset = _verify_and_map_shard(
                    os.path.join(self._path, str(shard["name"])),
                    int(shard["payload_size"]),
                )
                self._mmaps.append(mapped)
                self._payload_offsets.append(offset)
        except Exception:
            self.close()
            raise
        self._validate_table()
        self._closed = False

    def _validate_table(self) -> None:
        """Reject index rows pointing outside their shard's payload."""
        for row in range(len(self._table)):
            shard, offset, num_nodes, num_arcs, _ = (
                int(v) for v in self._table[row]
            )
            if shard < 0 or shard >= len(self._mmaps):
                raise SamplingError(
                    f"store index row {row} names missing shard {shard}"
                )
            end = offset + record_nbytes(num_nodes, num_arcs)
            payload_size = len(self._mmaps[shard]) - self._payload_offsets[shard]
            if offset < 0 or end > payload_size:
                raise SamplingError(
                    f"store index row {row} overruns shard {shard} "
                    f"({end} > {payload_size})"
                )

    # ------------------------------------------------------------------ #
    @property
    def path(self) -> str:
        return self._path

    def __len__(self) -> int:
        return len(self._table)

    def _check_open(self) -> None:
        if getattr(self, "_closed", True):
            raise SamplingError(f"subgraph store {self._path} is closed")

    def _node_map_view(self, index: int) -> np.ndarray:
        shard, offset, num_nodes, _, _ = (int(v) for v in self._table[index])
        start = self._payload_offsets[shard] + offset
        return np.frombuffer(self._mmaps[shard], np.int64, num_nodes, start)

    def __getitem__(self, index: int) -> Subgraph:
        self._check_open()
        if index < 0:
            index += len(self._table)
        if not 0 <= index < len(self._table):
            raise IndexError(index)
        shard, offset, num_nodes, num_arcs, directed = (
            int(v) for v in self._table[index]
        )
        mapped = self._mmaps[shard]
        pos = self._payload_offsets[shard] + offset

        def take(count: int, dtype) -> np.ndarray:
            nonlocal pos
            view = np.frombuffer(mapped, dtype, count, pos)
            pos += 8 * count
            return view

        node_map = take(num_nodes, np.int64)
        out_indptr = take(num_nodes + 1, np.int64)
        out_indices = take(num_arcs, np.int64)
        out_weights = take(num_arcs, np.float64)
        in_indptr = take(num_nodes + 1, np.int64)
        in_indices = take(num_arcs, np.int64)
        in_weights = take(num_arcs, np.float64)
        graph = Graph.from_csr(
            num_nodes,
            (out_indptr, out_indices, out_weights),
            (in_indptr, in_indices, in_weights),
            directed=bool(directed),
        )
        return Subgraph(graph, node_map)

    def __iter__(self) -> Iterator[Subgraph]:
        for index in range(len(self._table)):
            yield self[index]

    # ------------------------------------------------------------------ #
    # Sensitivity auditing — node_map-only reads, never the full records.
    # ------------------------------------------------------------------ #
    def occurrence_counts(self, num_original_nodes: int) -> np.ndarray:
        """Per-node occurrence counts, streamed from the node_map prefixes."""
        self._check_open()
        return accumulate_occurrence_counts(
            (self._node_map_view(index) for index in range(len(self._table))),
            num_original_nodes,
        )

    def max_occurrence(self, num_original_nodes: int) -> int:
        if len(self._table) == 0:
            return 0
        return int(self.occurrence_counts(num_original_nodes).max())

    def coverage(self, num_original_nodes: int) -> float:
        if num_original_nodes == 0:
            return 0.0
        counts = self.occurrence_counts(num_original_nodes)
        return float((counts > 0).mean())

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Unmap every shard (safe to call repeatedly)."""
        self._closed = True
        for mapped in getattr(self, "_mmaps", []):
            try:
                mapped.close()
            except (BufferError, OSError):
                # Outstanding frombuffer views pin the map; the OS reclaims
                # it when they die.
                pass
        self._mmaps = []

    def __enter__(self) -> "SubgraphStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # Pickle by path: spawn/fork workers re-open (and re-verify) the store
    # rather than shipping mapped pages through pickle.
    def __getstate__(self) -> dict:
        return {"path": self._path}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["path"])

    def __repr__(self) -> str:
        return (
            f"SubgraphStore(path={self._path!r}, num_subgraphs={len(self._table)}, "
            f"shards={len(self._payload_offsets)})"
        )


def merge_stores(
    paths,
    out: str | os.PathLike,
    *,
    shard_bytes: int = DEFAULT_SHARD_BYTES,
    meta: dict | None = None,
    expected_max_occurrence: int | None = None,
    num_original_nodes: int | None = None,
) -> SubgraphStore:
    """Merge several finalized stores into one store at ``out``.

    Unifies multi-round ``extend`` workflows and the sharded sampler's
    per-shard stores.  When every input store carries a ``"sequence"``
    metadata list (one global emission index per record — what
    :class:`repro.sharding.sink.ShardedStoreSink` writes), records are
    interleaved back into exact emission order; otherwise they concatenate
    in ``paths`` order.

    Safety rails:

    * **duplicate-record collisions** are rejected (two byte-identical
      records across inputs would double-count occurrences, silently
      breaking the DP sensitivity bound);
    * occurrence counts are **re-audited across the union** after the
      merge — if ``expected_max_occurrence`` is given and the merged
      maximum exceeds it, the merged store is deleted and a
      :class:`~repro.errors.SamplingError` raised.

    Returns the opened merged :class:`SubgraphStore`.
    """
    paths = [os.fspath(p) for p in paths]
    if not paths:
        raise SamplingError("merge_stores needs at least one input store")
    stores = [SubgraphStore(p) for p in paths]
    try:
        sequences = [store.meta.get("sequence") for store in stores]
        use_sequence = all(
            isinstance(seq, list) and len(seq) == len(store)
            for seq, store in zip(sequences, stores)
        )
        if use_sequence:
            entries = [
                (int(seq), store_index, record_index)
                for store_index, seq_list in enumerate(sequences)
                for record_index, seq in enumerate(seq_list)
            ]
            if len({entry[0] for entry in entries}) != len(entries):
                raise SamplingError(
                    "duplicate emission sequence numbers across input stores; "
                    "refusing to merge (inputs overlap)"
                )
            entries.sort()
            order = [(si, ri) for _seq, si, ri in entries]
        else:
            order = [
                (store_index, record_index)
                for store_index in range(len(stores))
                for record_index in range(len(stores[store_index]))
            ]

        merged_meta = {
            "merged_from": [os.path.basename(p.rstrip(os.sep)) or p for p in paths],
            "num_sources": len(paths),
        }
        merged_meta.update(meta or {})
        writer = SubgraphStoreWriter(out, shard_bytes=shard_bytes, meta=merged_meta)
        seen_digests: set[bytes] = set()
        max_node_id = -1
        try:
            for store_index, record_index in order:
                subgraph = stores[store_index][record_index]
                blob, _, _ = _encode_record(subgraph)
                digest = hashlib.sha256(blob).digest()
                if digest in seen_digests:
                    raise SamplingError(
                        f"duplicate subgraph record while merging (store "
                        f"{paths[store_index]}, record {record_index}); two inputs "
                        "hold the same record — merging would double-count "
                        "occurrences"
                    )
                seen_digests.add(digest)
                if len(subgraph.node_map):
                    max_node_id = max(max_node_id, int(subgraph.node_map.max()))
                writer.add(subgraph)
            merged = writer.finalize()
        except Exception:
            writer.abort()
            raise
    finally:
        for store in stores:
            store.close()

    if num_original_nodes is None:
        num_original_nodes = max_node_id + 1
    if num_original_nodes > 0:
        merged_max = merged.max_occurrence(num_original_nodes)
        if (
            expected_max_occurrence is not None
            and merged_max > expected_max_occurrence
        ):
            merged.close()
            import shutil

            shutil.rmtree(os.fspath(out), ignore_errors=True)
            raise SamplingError(
                f"merged store violates the occurrence bound: max occurrence "
                f"{merged_max} > expected {expected_max_occurrence}; inputs were "
                "sampled against different cap ledgers and cannot be unified"
            )
    return merged
