"""Bounded-queue prefetching for the training minibatch pipeline.

Two layers:

* :class:`PrefetchIterator` — a generic background iterator: a producer
  thread drains any iterable into a bounded queue while the consumer pulls
  from the front, overlapping the producer's work (disk reads, plan
  construction) with the consumer's (training compute).  Producer
  exceptions surface on the consumer at the position they occurred;
  :meth:`PrefetchIterator.close` always drains the queue and joins the
  producer, even when the consumer dies mid-stream.

* :class:`MinibatchPrefetcher` — the trainer-specific pipeline stage.  It
  draws Algorithm 2's batch indices from the trainer's *live* batch RNG on
  the producer thread, ahead of consumption, and warms the compute-plan
  cache for each drawn batch (for an on-disk store this is where record
  bytes are paged in and CSR plans built — off the training thread).

The subtle part is checkpoint bit-identity: because the producer runs
ahead, the live RNG is ``depth`` batches in the future whenever the
trainer wants to snapshot state.  Each queue item therefore carries the
serialized RNG state *after exactly that draw*; the trainer checkpoints
the consumed batch's snapshot, so a resumed run redraws precisely the
batches the interrupted run never trained on — byte-for-byte the same
stream a ``prefetch_depth=0`` run produces.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterable, Iterator, TypeVar

import numpy as np

from repro.errors import SamplingError
from repro.utils.rng import serialize_rng_state

T = TypeVar("T")

__all__ = ["PrefetchIterator", "MinibatchPrefetcher"]

_POLL_SECONDS = 0.05


class PrefetchIterator(Iterator[T]):
    """Iterate ``iterable`` on a background thread through a bounded queue.

    Args:
        iterable: source of items; consumed on the producer thread, so it
            must not share mutable state with the consumer (the minibatch
            producer deliberately owns the batch RNG while active).
        depth: queue bound — at most this many items are materialised
            ahead of the consumer.
    """

    def __init__(self, iterable: Iterable[T], depth: int) -> None:
        if depth < 1:
            raise SamplingError(f"prefetch depth must be >= 1, got {depth}")
        self._queue: queue.Queue = queue.Queue(depth)
        self._stop = threading.Event()
        self._finished = False
        self._thread = threading.Thread(
            target=self._produce, args=(iter(iterable),), daemon=True
        )
        self._thread.start()

    def _put(self, message: tuple) -> bool:
        """Blocking put that aborts when the consumer closes the queue."""
        while not self._stop.is_set():
            try:
                self._queue.put(message, timeout=_POLL_SECONDS)
                return True
            except queue.Full:
                continue
        return False

    def _produce(self, iterator: Iterator[T]) -> None:
        try:
            for item in iterator:
                if not self._put(("item", item)):
                    return
            terminal = ("done", None)
        except BaseException as error:  # surfaced on the consumer side
            terminal = ("error", error)
        self._put(terminal)

    def __iter__(self) -> "PrefetchIterator[T]":
        return self

    def __next__(self) -> T:
        if self._finished:
            raise StopIteration
        if self._stop.is_set():
            raise SamplingError("prefetch iterator is closed")
        while True:
            try:
                kind, value = self._queue.get(timeout=_POLL_SECONDS)
                break
            except queue.Empty:
                if not self._thread.is_alive():
                    # No terminal message and no producer: it was closed
                    # out from under us or killed uncleanly.
                    raise SamplingError(
                        "prefetch producer exited without a terminal message"
                    ) from None
        if kind == "item":
            return value
        self._finished = True
        self._stop.set()
        if kind == "error":
            raise value
        raise StopIteration

    def close(self) -> None:
        """Stop the producer, drain the queue, and join the thread.

        Safe to call repeatedly and from ``finally`` blocks: a producer
        blocked on a full queue observes the stop flag within one poll
        interval, so the join cannot deadlock.
        """
        self._stop.set()
        try:
            while True:
                self._queue.get_nowait()
        except queue.Empty:
            pass
        self._thread.join(timeout=10.0)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise SamplingError("prefetch producer failed to stop")

    def __enter__(self) -> "PrefetchIterator[T]":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MinibatchPrefetcher:
    """Pipelined sample→pack stage feeding ``DPGNNTrainer.train``.

    Each produced item is ``(batch_indices, rng_state_after_draw)``.  While
    the prefetcher is active it *owns* ``rng`` — the trainer must neither
    draw from nor serialize the live generator until :meth:`close` returns
    (it checkpoints the per-item snapshots instead).

    Args:
        rng: the trainer's batch generator, advanced on the producer thread.
        pool_size: ``len(source)`` — the subsampling population.
        batch_size: Algorithm 2's ``B``.
        num_batches: exactly how many batches to draw.  Capping draws at the
            remaining iterations means the live RNG finishes in the same
            state a non-prefetched run leaves it in.
        depth: bounded-queue size (batches materialised ahead).
        plans: optional :class:`~repro.core.compute_plan.ComputePlanCache`
            warmed for every drawn index on the producer thread — for an
            on-disk store this moves record paging + plan construction off
            the training thread.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        pool_size: int,
        batch_size: int,
        num_batches: int,
        *,
        depth: int,
        plans=None,
    ) -> None:
        if num_batches < 0:
            raise SamplingError(f"num_batches must be >= 0, got {num_batches}")
        self.initial_state = serialize_rng_state(rng)

        def produce():
            for _ in range(num_batches):
                indices = rng.choice(pool_size, size=batch_size, replace=False)
                state_after = serialize_rng_state(rng)
                if plans is not None:
                    for index in indices:
                        plans.plan(int(index))
                yield indices, state_after

        self._iterator: PrefetchIterator = PrefetchIterator(produce(), depth)

    def __iter__(self) -> "MinibatchPrefetcher":
        return self

    def __next__(self) -> tuple[np.ndarray, dict]:
        return next(self._iterator)

    def close(self) -> None:
        """Stop the producer and release ownership of the generator."""
        self._iterator.close()
