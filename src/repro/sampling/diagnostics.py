"""Diagnostics for subgraph containers.

Answers the questions one asks when tuning the samplers: how many
subgraphs, how big, how dense, how much of the original graph is covered,
and how close the occurrence distribution sails to the privacy bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingError
from repro.sampling.container import SubgraphContainer
from repro.sampling.parallel import SamplingStats


@dataclass(frozen=True)
class ContainerDiagnostics:
    """Statistical fingerprint of a subgraph container.

    Attributes:
        num_subgraphs: pool size ``m``.
        mean_size / min_size / max_size: node counts per subgraph.
        mean_density: mean arcs / (n·(n−1)) per subgraph.
        coverage: fraction of original nodes in ≥ 1 subgraph.
        occurrence_histogram: ``hist[c]`` = number of original nodes
            appearing in exactly ``c`` subgraphs.
        max_occurrence: the empirical N_g.
        bound_utilisation: ``max_occurrence / bound`` when a bound is
            given — how much of the allowed sensitivity the sampler used.
    """

    num_subgraphs: int
    mean_size: float
    min_size: int
    max_size: int
    mean_density: float
    coverage: float
    occurrence_histogram: tuple[int, ...]
    max_occurrence: int
    bound_utilisation: float | None


def diagnose_container(
    container: SubgraphContainer,
    num_original_nodes: int,
    *,
    occurrence_bound: int | None = None,
) -> ContainerDiagnostics:
    """Compute :class:`ContainerDiagnostics` for ``container``.

    Args:
        container: the sampled pool.
        num_original_nodes: ``|V|`` of the source graph.
        occurrence_bound: optional theoretical ``N_g`` to compare against.
    """
    if len(container) == 0:
        raise SamplingError("cannot diagnose an empty container")
    if num_original_nodes < 1:
        raise SamplingError("num_original_nodes must be >= 1")

    sizes = np.array([subgraph.num_nodes for subgraph in container])
    densities = []
    for subgraph in container:
        nodes = subgraph.num_nodes
        pairs = nodes * (nodes - 1)
        densities.append(subgraph.graph.num_edges / pairs if pairs else 0.0)

    counts = container.occurrence_counts(num_original_nodes)
    histogram = np.bincount(counts)
    max_occurrence = int(counts.max())
    utilisation = None
    if occurrence_bound is not None:
        if occurrence_bound < 1:
            raise SamplingError("occurrence_bound must be >= 1")
        utilisation = max_occurrence / occurrence_bound

    return ContainerDiagnostics(
        num_subgraphs=len(container),
        mean_size=float(sizes.mean()),
        min_size=int(sizes.min()),
        max_size=int(sizes.max()),
        mean_density=float(np.mean(densities)),
        coverage=float((counts > 0).mean()),
        occurrence_histogram=tuple(int(c) for c in histogram),
        max_occurrence=max_occurrence,
        bound_utilisation=utilisation,
    )


def render_diagnostics(diagnostics: ContainerDiagnostics) -> str:
    """Human-readable multi-line summary."""
    lines = [
        f"subgraphs        : {diagnostics.num_subgraphs}",
        f"sizes            : mean {diagnostics.mean_size:.1f} "
        f"(min {diagnostics.min_size}, max {diagnostics.max_size})",
        f"mean density     : {diagnostics.mean_density:.4f}",
        f"node coverage    : {100 * diagnostics.coverage:.1f}%",
        f"max occurrence   : {diagnostics.max_occurrence}",
    ]
    if diagnostics.bound_utilisation is not None:
        lines.append(
            f"bound utilisation: {100 * diagnostics.bound_utilisation:.1f}% of N_g"
        )
    occupancy = ", ".join(
        f"{count}x:{nodes}" for count, nodes in enumerate(diagnostics.occurrence_histogram)
    )
    lines.append(f"occurrence hist  : {occupancy}")
    return "\n".join(lines)


def render_sampling_stats(stats: SamplingStats) -> str:
    """Human-readable multi-line summary of the engine's counters."""
    lines = [
        f"workers          : {stats.workers} (chunk size {stats.chunk_size})",
        f"starts           : {stats.starts_selected} selected, "
        f"{stats.starts_skipped} skipped",
        f"walks            : {stats.walks_attempted} attempted, "
        f"{stats.walks_failed} failed, {stats.walks_rejected} cap-rejected "
        f"(cap-hit rate {100 * stats.cap_hit_rate:.1f}%)",
        f"subgraphs        : {stats.subgraphs_emitted} emitted",
    ]
    if stats.stage_seconds:
        timing = ", ".join(
            f"{stage} {seconds:.3f}s" for stage, seconds in stats.stage_seconds.items()
        )
        lines.append(f"stage wall time  : {timing}")
    return "\n".join(lines)
