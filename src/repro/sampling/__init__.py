"""Subgraph extraction: Algorithm 1 (naive) and Algorithm 3 (dual-stage)."""

from repro.sampling.container import Subgraph, SubgraphContainer
from repro.sampling.random_walk import random_walk_nodes
from repro.sampling.naive import NaiveSamplingConfig, extract_subgraphs_naive
from repro.sampling.frequency import FrequencyVector, adaptive_neighbor_probabilities
from repro.sampling.dual_stage import (
    DualStageResult,
    DualStageSamplingConfig,
    extract_subgraphs_dual_stage,
)
from repro.sampling.random_sets import extract_subgraphs_random
from repro.sampling.parallel import (
    DualStageRun,
    NaiveSamplingRun,
    SamplingStats,
    sample_dual_stage,
    sample_naive,
)
from repro.sampling.store import (
    SubgraphStore,
    SubgraphStoreWriter,
    merge_stores,
)

__all__ = [
    "Subgraph",
    "SubgraphContainer",
    "random_walk_nodes",
    "NaiveSamplingConfig",
    "extract_subgraphs_naive",
    "FrequencyVector",
    "adaptive_neighbor_probabilities",
    "DualStageSamplingConfig",
    "DualStageResult",
    "extract_subgraphs_dual_stage",
    "extract_subgraphs_random",
    "SamplingStats",
    "NaiveSamplingRun",
    "DualStageRun",
    "sample_naive",
    "sample_dual_stage",
    "SubgraphStore",
    "SubgraphStoreWriter",
    "merge_stores",
]
