"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``train``      — fit a pipeline on a dataset, report privacy + utility,
  optionally save a checkpoint;
* ``seeds``      — load a checkpoint and print the top-k seed set;
* ``datasets``   — list the dataset registry (Table I);
* ``experiment`` — regenerate one of the paper's tables/figures;
* ``calibrate``  — print the noise multiplier for a privacy target;
* ``publish``    — train a model and publish it into a serving registry;
* ``serve``      — answer influence queries over HTTP from a published
  model (inference spends no additional privacy budget);
* ``shard-host`` — serve shards of a persisted shard set over TCP for a
  ``train --shard-transport tcp`` coordinator on another machine.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.core.checkpoint import load_model, save_model
from repro.core.pipeline import PrivIM, PrivIMConfig, PrivIMStar
from repro.core.seed_selection import select_top_k_seeds
from repro.datasets.registry import DATASETS, load_dataset
from repro.dp.accountant import calibrate_sigma
from repro.experiments.harness import split_graph
from repro.im.celf import celf_coverage
from repro.im.metrics import coverage_ratio
from repro.im.spread import coverage_spread
from repro.obs import Observability, RunRecorder, configure_logging
from repro.utils.tables import format_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PrivIM: differentially private GNNs for influence maximization",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    train = commands.add_parser("train", help="train a private IM model")
    train.add_argument("--dataset", default="lastfm", choices=sorted(DATASETS))
    train.add_argument("--scale", type=float, default=0.1)
    train.add_argument("--epsilon", type=float, default=4.0,
                       help="privacy budget; <= 0 means non-private")
    train.add_argument("--method", default="privim-star",
                       choices=["privim-star", "privim-scs", "privim"])
    train.add_argument("--model", default="grat")
    train.add_argument("--subgraph-size", type=int, default=30)
    train.add_argument("--threshold", type=int, default=4)
    train.add_argument("--iterations", type=int, default=40)
    train.add_argument("--k", type=int, default=20)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--workers", type=int, default=1,
                       help="sampling worker processes (1=serial, 0=one per CPU); "
                            "results are bit-identical for any value")
    train.add_argument("--grad-workers", type=int, default=1,
                       help="gradient fan-out processes per training iteration "
                            "(1=serial, 0=one per CPU); results are "
                            "bit-identical for any value")
    train.add_argument("--grad-mode", choices=["loop", "vectorized"],
                       default="vectorized",
                       help="per-batch gradient strategy: one disjoint-union "
                            "pass (vectorized) or one pass per subgraph "
                            "(loop); results are bit-identical either way")
    train.add_argument("--save", help="model-only checkpoint path (.npz)")
    train.add_argument("--checkpoint",
                       help="crash-safe training-state checkpoint path; resume "
                            "with --resume is bit-identical to an uninterrupted run")
    train.add_argument("--checkpoint-every", type=int, default=None,
                       help="iterations between training checkpoints "
                            "(default 1 when --checkpoint is set)")
    train.add_argument("--resume", action="store_true",
                       help="restore --checkpoint before training if it exists")
    train.add_argument("--shards", type=int, default=1,
                       help="edge-cut shards for the sharded sampling engine "
                            "(default 1 = flat single-graph engine; results "
                            "are bit-identical either way)")
    train.add_argument("--shard-workers", type=int, default=1,
                       help="worker processes hosting shards (0 = all cores)")
    train.add_argument("--shard-dir", metavar="DIR",
                       help="persisted shard-set directory: loaded when it "
                            "already holds a shard set, otherwise built from "
                            "the graph and saved here (see 'repro partition')")
    train.add_argument("--shard-transport", default=None,
                       choices=["local", "fork", "tcp"],
                       help="shard channel: in-process, forked pipe workers, "
                            "or TCP shard hosts (default: local for 1 worker, "
                            "fork beyond); results are bit-identical for all")
    train.add_argument("--shard-hosts", metavar="HOST:PORT[,..]",
                       help="comma-separated addresses of running "
                            "'repro shard-host' servers (implies "
                            "--shard-transport tcp; every shard must be "
                            "served by exactly one host)")
    train.add_argument("--subgraph-store", metavar="DIR",
                       help="spill the sampled subgraph pool to this directory "
                            "as an mmap-backed on-disk store; training memory "
                            "stays flat in the pool size, results are "
                            "bit-identical to the in-memory pool")
    train.add_argument("--prefetch-depth", type=int, default=0,
                       help="minibatches prepared ahead of training on a "
                            "background thread (0=off); results are "
                            "bit-identical for any depth")
    train.add_argument("--log-level", default=None,
                       choices=["debug", "info", "warning", "error"],
                       help="enable structured logging at this level "
                            "(library is silent by default)")
    train.add_argument("--log-json", action="store_true",
                       help="emit logs as JSON lines instead of human text "
                            "(implies --log-level info unless set)")
    train.add_argument("--run-record", metavar="PATH",
                       help="write a JSONL run record (spans, per-iteration "
                            "metrics, privacy-budget ledger) to PATH")

    seeds = commands.add_parser("seeds", help="select seeds with a checkpoint")
    seeds.add_argument("checkpoint")
    seeds.add_argument("--dataset", default="lastfm", choices=sorted(DATASETS))
    seeds.add_argument("--scale", type=float, default=0.1)
    seeds.add_argument("--k", type=int, default=20)

    commands.add_parser("datasets", help="list the dataset registry")

    partition = commands.add_parser(
        "partition",
        help="partition a dataset into an on-disk shard set for sharded sampling",
    )
    partition.add_argument("--dataset", default="lastfm", choices=sorted(DATASETS))
    partition.add_argument("--scale", type=float, default=0.1)
    partition.add_argument("--seed", type=int, default=0,
                           help="seed matching the intended training run")
    partition.add_argument("--shards", type=int, default=2,
                           help="number of edge-cut shards")
    partition.add_argument("--method", default="bfs", choices=["bfs", "hash"],
                           help="partition assignment method")
    partition.add_argument("--out", required=True, metavar="DIR",
                           help="directory for the persisted shard set")

    shard_host = commands.add_parser(
        "shard-host",
        help="serve shards of a persisted shard set over TCP for a remote "
             "'repro train --shard-transport tcp' coordinator",
    )
    shard_host.add_argument("--shard-dir", required=True, metavar="DIR",
                            help="persisted shard-set directory "
                                 "(see 'repro partition')")
    shard_host.add_argument("--shards", required=True, metavar="ID[,ID..]",
                            help="comma-separated shard ids this host serves")
    shard_host.add_argument("--host", default="127.0.0.1")
    shard_host.add_argument("--port", type=int, default=0,
                            help="listening port (0 = pick a free port)")
    shard_host.add_argument("--log-level", default=None,
                            choices=["debug", "info", "warning", "error"])
    shard_host.add_argument("--log-json", action="store_true")

    experiment = commands.add_parser("experiment", help="regenerate a table/figure")
    experiment.add_argument(
        "name",
        choices=["table1", "table2", "table3", "fig5", "fig9", "fig13",
                 "indicator", "friendster"],
    )
    experiment.add_argument("--profile", default="quick",
                            choices=["smoke", "quick", "full"])
    experiment.add_argument("--dataset", default="lastfm")

    calibrate = commands.add_parser("calibrate", help="noise for a privacy target")
    calibrate.add_argument("--epsilon", type=float, required=True)
    calibrate.add_argument("--delta", type=float, default=1e-4)
    calibrate.add_argument("--steps", type=int, default=60)
    calibrate.add_argument("--batch-size", type=int, default=16)
    calibrate.add_argument("--num-subgraphs", type=int, default=300)
    calibrate.add_argument("--max-occurrences", type=int, default=4)

    publish = commands.add_parser(
        "publish", help="train a model and publish it into a serving registry"
    )
    publish.add_argument("--registry", required=True,
                         help="registry directory (created if missing)")
    publish.add_argument("--name", default="default",
                         help="model name inside the registry")
    publish.add_argument("--dataset", default="lastfm", choices=sorted(DATASETS))
    publish.add_argument("--scale", type=float, default=0.1)
    publish.add_argument("--epsilon", type=float, default=4.0,
                         help="privacy budget; <= 0 means non-private")
    publish.add_argument("--method", default="privim-star",
                         choices=["privim-star", "privim-scs", "privim"])
    publish.add_argument("--model", default="grat")
    publish.add_argument("--subgraph-size", type=int, default=30)
    publish.add_argument("--threshold", type=int, default=4)
    publish.add_argument("--iterations", type=int, default=40)
    publish.add_argument("--seed", type=int, default=0)
    publish.add_argument("--workers", type=int, default=1)
    publish.add_argument("--grad-workers", type=int, default=1)
    publish.add_argument("--subgraph-store", metavar="DIR",
                         help="spill the sampled pool to an on-disk store "
                              "(see train --subgraph-store)")
    publish.add_argument("--prefetch-depth", type=int, default=0,
                         help="minibatch prefetch depth (see train)")
    publish.add_argument("--grad-mode", choices=["loop", "vectorized"],
                         default="vectorized")

    serve = commands.add_parser(
        "serve", help="serve influence queries from a published model"
    )
    serve.add_argument("--registry", required=True, help="registry directory")
    serve.add_argument("--name", default="default", help="model name to serve")
    serve.add_argument("--model-version", type=int, default=None,
                       help="version to serve (default: latest)")
    serve.add_argument("--dataset", default="lastfm", choices=sorted(DATASETS),
                       help="graph requests are answered on")
    serve.add_argument("--scale", type=float, default=0.1)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8099)
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="concurrently executing requests")
    serve.add_argument("--queue-limit", type=int, default=32,
                       help="requests allowed to wait; beyond this -> 503")
    serve.add_argument("--replicas", type=int, default=1,
                       help="worker processes behind the port (1 = in-process)")
    serve.add_argument("--batch-window-ms", type=float, default=0.0,
                       help="cross-request micro-batching window (0 = off)")
    serve.add_argument("--deadline-ms", type=int, default=5000,
                       help="default per-request deadline")
    serve.add_argument("--log-level", default=None,
                       choices=["debug", "info", "warning", "error"])
    serve.add_argument("--log-json", action="store_true")

    audit = commands.add_parser("audit", help="membership-inference audit")
    audit.add_argument("--dataset", default="bitcoin", choices=sorted(DATASETS))
    audit.add_argument("--scale", type=float, default=0.04)
    audit.add_argument("--epsilon", type=float, default=4.0)
    audit.add_argument("--repeats", type=int, default=6)
    audit.add_argument("--iterations", type=int, default=8)
    audit.add_argument("--seed", type=int, default=0)
    return parser


def _build_observability(args: argparse.Namespace) -> Observability | None:
    """Observability bundle for ``--log-level`` / ``--log-json`` /
    ``--run-record``; ``None`` (zero overhead) when no flag is given."""
    wants_logs = args.log_level is not None or args.log_json
    if wants_logs:
        configure_logging(args.log_level or "info", json_lines=args.log_json)
    if not wants_logs and not args.run_record:
        return None
    recorder = RunRecorder(args.run_record) if args.run_record else None
    return Observability(recorder=recorder)


def _command_train(args: argparse.Namespace) -> int:
    if (args.resume or args.checkpoint_every is not None) and not args.checkpoint:
        print("--resume/--checkpoint-every require --checkpoint", file=sys.stderr)
        return 2
    graph = load_dataset(args.dataset, scale=args.scale)
    train_graph, test_graph = split_graph(graph, 0.5, rng=args.seed)
    checkpoint_every = args.checkpoint_every
    if args.checkpoint and checkpoint_every is None:
        checkpoint_every = 1
    config = PrivIMConfig(
        epsilon=args.epsilon if args.epsilon > 0 else None,
        model=args.model,
        subgraph_size=args.subgraph_size,
        threshold=args.threshold,
        iterations=args.iterations,
        workers=args.workers,
        grad_workers=args.grad_workers,
        grad_mode=args.grad_mode,
        num_shards=args.shards,
        shard_workers=args.shard_workers,
        shard_dir=args.shard_dir,
        shard_transport=args.shard_transport
        or ("tcp" if args.shard_hosts else None),
        shard_hosts=args.shard_hosts,
        checkpoint_every=checkpoint_every if args.checkpoint else None,
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        subgraph_store=args.subgraph_store,
        prefetch_depth=args.prefetch_depth,
        rng=args.seed,
    )
    obs = _build_observability(args)
    if args.method == "privim":
        pipeline = PrivIM(config, obs=obs)
    else:
        pipeline = PrivIMStar(
            config, include_boundary=args.method == "privim-star", obs=obs
        )
    try:
        result = pipeline.fit(train_graph)

        k = min(args.k, test_graph.num_nodes)
        seeds = pipeline.select_seeds(test_graph, k)
        spread = coverage_spread(test_graph, seeds)
        _, celf_spread = celf_coverage(test_graph, k)
        if obs is not None:
            obs.event(
                "evaluation",
                k=k,
                spread=spread,
                celf_spread=celf_spread,
                coverage_ratio=coverage_ratio(spread, celf_spread),
                seeds=seeds,
            )
    finally:
        if obs is not None and obs.recorder is not None:
            obs.recorder.close()
    print(f"dataset        : {args.dataset} (|V|={graph.num_nodes})")
    print(f"method         : {pipeline.method_name}")
    print(f"subgraphs      : {result.num_subgraphs} (N_g={result.max_occurrences})")
    if result.sampling_stats is not None:
        stats = result.sampling_stats
        print(f"sampling       : {stats.workers} worker(s), "
              f"{stats.walks_attempted} walks, {stats.walks_rejected} cap-rejected "
              f"({100 * stats.cap_hit_rate:.1f}% cap-hit), "
              f"{stats.total_seconds:.2f}s")
    print(f"noise sigma    : {result.sigma:.4f}")
    print(f"achieved eps   : {result.epsilon:.4f} (delta={result.delta:.2e})")
    print(f"spread@k={k:<4} : {spread}  (CELF {celf_spread}, "
          f"ratio {coverage_ratio(spread, celf_spread):.1f}%)")
    if args.checkpoint:
        print(f"train ckpt     : {args.checkpoint}"
              f"{' (resumed)' if args.resume else ''}")
    if args.run_record:
        events = len(obs.recorder.events) if obs and obs.recorder else 0
        print(f"run record     : {args.run_record} ({events} events)")
    if args.save:
        save_model(pipeline.model, args.save)
        print(f"checkpoint     : {args.save}")
    return 0


def _command_partition(args: argparse.Namespace) -> int:
    from repro.sharding import build_shard_set
    from repro.utils.rng import ensure_rng, spawn_rngs

    graph = load_dataset(args.dataset, scale=args.scale)
    train_graph, _ = split_graph(graph, 0.5, rng=args.seed)
    # Same rng derivation as the pipeline's shard stream, so a shard set
    # built offline is identical to one the pipeline would build inline.
    shard_rng = spawn_rngs(ensure_rng(args.seed), 4)[3]
    shard_set = build_shard_set(
        train_graph, args.shards, method=args.method, rng=shard_rng
    )
    shard_set.save(args.out)
    stats = shard_set.stats()
    print(f"dataset        : {args.dataset} (train |V|={train_graph.num_nodes})")
    print(f"shards         : {stats.num_parts} ({stats.method})")
    print(f"sizes          : {list(stats.sizes)} (balance {stats.balance:.2f})")
    print(f"cut arcs       : {stats.cut_arcs}/{stats.total_arcs} "
          f"({100 * stats.cut_fraction:.1f}%)")
    print(f"shard set      : {args.out}")
    return 0


def _command_shard_host(args: argparse.Namespace) -> int:
    import os

    from repro.sharding import ShardSet, load_shard
    from repro.sharding.partition import _shard_filename
    from repro.sharding.transport import ShardHostServer

    if args.log_level is not None or args.log_json:
        configure_logging(args.log_level or "info", json_lines=args.log_json)
    try:
        shard_ids = sorted({int(part) for part in args.shards.split(",") if part})
    except ValueError:
        print(f"--shards {args.shards!r} is not a comma-separated id list",
              file=sys.stderr)
        return 2
    # Index only: this host maps just the shard files it serves, so its
    # RSS is bounded by the hosted shards, never the whole graph.
    shard_set = ShardSet.load(args.shard_dir, load_shards=False)
    # load_shards=False leaves .shards empty, so count via the assignment.
    total_shards = int(shard_set.assignment.max()) + 1
    bad = [i for i in shard_ids if not 0 <= i < total_shards]
    if bad or not shard_ids:
        print(f"shard ids {bad or '(none)'} outside 0..{total_shards - 1}",
              file=sys.stderr)
        return 2
    shards = {
        shard_id: load_shard(os.path.join(args.shard_dir, _shard_filename(shard_id)))
        for shard_id in shard_ids
    }
    server = ShardHostServer(shards, host=args.host, port=args.port)

    def _request_shutdown(signum, frame):
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _request_shutdown)
    print(f"shard set      : {args.shard_dir} "
          f"({total_shards} shards, |V|={shard_set.num_nodes})")
    print(f"serving shards : {','.join(str(i) for i in shard_ids)}")
    print(f"listening      : {server.address[0]}:{server.address[1]}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        print("shutdown       : clean")
    return 0


def _command_seeds(args: argparse.Namespace) -> int:
    model = load_model(args.checkpoint)
    graph = load_dataset(args.dataset, scale=args.scale)
    k = min(args.k, graph.num_nodes)
    seeds = select_top_k_seeds(model, graph, k)
    print(" ".join(str(seed) for seed in seeds))
    return 0


def _command_datasets() -> int:
    rows = [
        [spec.name, spec.num_nodes, spec.num_edges,
         "directed" if spec.directed else "undirected", spec.avg_degree,
         spec.description]
        for spec in DATASETS.values()
    ]
    print(format_table(
        ["name", "|V|", "|E|", "type", "avg deg", "description"], rows
    ))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import (
        fig5,
        fig9,
        fig_indicator,
        friendster,
        param_study,
        table1,
        table2,
        table3,
    )

    if args.name == "table1":
        print(table1.run(args.profile).render())
    elif args.name == "table2":
        print(table2.run(args.profile).render())
    elif args.name == "table3":
        print(table3.run(args.profile).render())
    elif args.name == "fig5":
        print(fig5.run_dataset(args.dataset, args.profile).render())
    elif args.name == "fig9":
        print(fig9.run(args.profile).render())
    elif args.name == "fig13":
        print(param_study.run_theta_study(args.dataset, args.profile).render())
    elif args.name == "indicator":
        print(fig_indicator.run_m_sweep(args.dataset, args.profile).render())
    else:
        print(friendster.run(args.profile).render())
    return 0


def _command_calibrate(args: argparse.Namespace) -> int:
    sigma = calibrate_sigma(
        args.epsilon,
        args.delta,
        steps=args.steps,
        batch_size=args.batch_size,
        num_subgraphs=args.num_subgraphs,
        max_occurrences=args.max_occurrences,
    )
    print(f"sigma = {sigma:.6f}")
    return 0


def _build_pipeline(args: argparse.Namespace):
    """The pipeline the ``publish`` command trains (mirrors ``train``)."""
    config = PrivIMConfig(
        epsilon=args.epsilon if args.epsilon > 0 else None,
        model=args.model,
        subgraph_size=args.subgraph_size,
        threshold=args.threshold,
        iterations=args.iterations,
        workers=args.workers,
        grad_workers=args.grad_workers,
        grad_mode=args.grad_mode,
        subgraph_store=args.subgraph_store,
        prefetch_depth=args.prefetch_depth,
        rng=args.seed,
    )
    if args.method == "privim":
        return PrivIM(config)
    return PrivIMStar(config, include_boundary=args.method == "privim-star")


def _command_publish(args: argparse.Namespace) -> int:
    from repro.serving import ModelRegistry

    graph = load_dataset(args.dataset, scale=args.scale)
    train_graph, _ = split_graph(graph, 0.5, rng=args.seed)
    pipeline = _build_pipeline(args)
    result = pipeline.fit(train_graph)
    registry = ModelRegistry(args.registry)
    version = registry.publish(
        result.build_artifact(dataset=args.dataset, scale=args.scale, seed=args.seed),
        name=args.name,
    )
    print(f"registry       : {args.registry}")
    print(f"published      : {args.name} v{version}")
    print(f"method         : {pipeline.method_name}")
    print(f"achieved eps   : {result.epsilon:.4f} (delta={result.delta:.2e})")
    print(f"artifact       : {registry.artifact_path(args.name, version)}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serving import InfluenceService, ModelRegistry, ServiceConfig
    from repro.serving.http import make_server
    from repro.serving.replica import ReplicaConfig, ReplicaSet

    if args.log_level is not None or args.log_json:
        configure_logging(args.log_level or "info", json_lines=args.log_json)
    registry = ModelRegistry(args.registry)
    version = args.model_version
    if version is None:
        version = registry.latest(args.name)
    artifact = registry.load(args.name, version)
    graph = load_dataset(args.dataset, scale=args.scale)
    service_config = ServiceConfig(
        max_inflight=args.max_inflight,
        queue_limit=args.queue_limit,
        default_deadline=args.deadline_ms / 1000.0,
        batch_window_ms=args.batch_window_ms,
    )

    def build_service() -> InfluenceService:
        return InfluenceService(
            artifact,
            graph,
            model_name=args.name,
            model_version=version,
            config=service_config,
        )

    privacy = artifact.privacy
    eps = "inf" if privacy.epsilon == float("inf") else f"{privacy.epsilon:.4f}"
    print(f"serving        : {args.name} v{version} ({artifact.method})")
    print(f"privacy        : eps={eps} delta={privacy.delta:.2e} "
          "(inference spends no additional budget)")
    print(f"graph          : {args.dataset} (|V|={graph.num_nodes})")

    def _request_shutdown(signum, frame):
        # Disarm before raising: a second SIGTERM while the drain is in
        # progress would otherwise raise *inside* the cleanup and abort
        # it half way (workers reaped but no clean-exit report).
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
        raise KeyboardInterrupt

    # SIGTERM drains like Ctrl-C — background jobs in non-interactive
    # shells (CI) inherit SIGINT ignored, so plain `kill` must also work.
    signal.signal(signal.SIGTERM, _request_shutdown)

    if args.replicas > 1:
        replica_set = ReplicaSet(
            lambda: (build_service(), registry),
            ReplicaConfig(
                replicas=args.replicas, host=args.host, port=args.port
            ),
        )
        replica_set.start()
        print(f"replicas       : {args.replicas} ({replica_set.mode})")
        print(f"listening      : {replica_set.url}", flush=True)
        try:
            while True:
                signal.pause()
        except KeyboardInterrupt:
            pass
        finally:
            replica_set.stop()
            print("shutdown       : clean")
        return 0

    server = make_server(
        build_service(), host=args.host, port=args.port, registry=registry
    )
    host, port = server.server_address[:2]
    print(f"listening      : http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown_gracefully()
        server.server_close()
        print("shutdown       : clean")
    return 0


def _command_audit(args: argparse.Namespace) -> int:
    from repro.dp.audit import audit_node_membership

    graph = load_dataset(args.dataset, scale=args.scale)

    def train_fn(target_graph, seed):
        pipeline = PrivIMStar(
            PrivIMConfig(
                epsilon=args.epsilon,
                subgraph_size=12,
                threshold=4,
                iterations=args.iterations,
                batch_size=6,
                sampling_rate=0.6,
                hidden_features=8,
                num_layers=2,
                rng=seed,
            )
        )
        pipeline.fit(target_graph)
        return pipeline

    result = audit_node_membership(
        train_fn,
        graph,
        epsilon=args.epsilon,
        delta=1.0 / (2 * graph.num_nodes),
        repeats=args.repeats,
        rng=args.seed,
    )
    print(f"target node      : {result.target_node}")
    print(f"attack advantage : {result.attack_advantage:.3f} "
          f"(+/- {result.sampling_error:.3f} sampling error)")
    print(f"DP bound         : {result.dp_advantage_bound:.3f}")
    print(f"verdict          : {'OK' if result.respects_bound else 'VIOLATION'}")
    return 0 if result.respects_bound else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "train":
        return _command_train(args)
    if args.command == "seeds":
        return _command_seeds(args)
    if args.command == "datasets":
        return _command_datasets()
    if args.command == "partition":
        return _command_partition(args)
    if args.command == "shard-host":
        return _command_shard_host(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "audit":
        return _command_audit(args)
    if args.command == "publish":
        return _command_publish(args)
    if args.command == "serve":
        return _command_serve(args)
    return _command_calibrate(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
