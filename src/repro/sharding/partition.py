"""Edge-cut graph shards with halo nodes.

A :class:`GraphShard` holds the compact CSR rows of the nodes one shard
*owns* plus read-only ghost entries ("halo nodes") for every cross-shard
neighbour, so no arc is dropped: the union of all shards reproduces the
original graph bit-exactly (:meth:`ShardSet.reassemble` round-trips the
adjacency, weights, and :func:`repro.serving.graph_fingerprint`).

Layout per shard (all ids sorted ascending):

* ``owned``      — global ids this shard owns (``assignment == shard_id``);
* ``halo``       — global ids of cross-shard neighbours, with
  ``halo_owner[i]`` naming the shard that owns ``halo[i]``;
* ``global_ids`` — ``concat(owned, halo)``: the shard-local id space.
  Local ids ``< num_owned`` are owned, the rest are halo ghosts;
* out/in CSR over owned rows only, targets/sources stored as *local* ids.

Row order inside each CSR row is preserved verbatim from the parent graph,
which is what makes sharded random walks draw-for-draw identical to the
serial sampler (`repro.sampling.random_walk` consumes candidates in row
order).

Shard sets persist in the :func:`repro.core.checkpoint.write_checksummed`
framing — one ``shardset.bin`` index (partition assignment + manifest) and
one checksummed file per shard — and load back via streaming verification
plus ``mmap``, so a worker process only pages in the shards it hosts.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.core.checkpoint import map_checksummed, read_checksummed, write_checksummed
from repro.graphs.graph import Graph
from repro.graphs.partition import (
    PartitionStats,
    compute_partition_stats,
    partition_assignment,
)

SHARD_MAGIC = b"REPRO-SHARD-v1"
SHARDSET_MAGIC = b"REPRO-SHARDSET-v1"
SHARDSET_INDEX = "shardset.bin"

__all__ = [
    "GraphShard",
    "ShardSet",
    "build_shard_set",
    "load_shard",
    "SHARDSET_INDEX",
]


def _shard_filename(shard_id: int) -> str:
    return f"shard-{shard_id:05d}.bin"


def _row_gather(indptr: np.ndarray, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Select CSR rows ``nodes``; returns ``(new_indptr, flat_indices)``.

    ``flat_indices`` indexes the parent's indices/weights arrays so the
    gathered rows keep their original within-row order.
    """
    starts = indptr[nodes]
    lengths = indptr[nodes + 1] - starts
    new_indptr = np.zeros(len(nodes) + 1, dtype=np.int64)
    np.cumsum(lengths, out=new_indptr[1:])
    total = int(new_indptr[-1])
    flat = np.repeat(starts - new_indptr[:-1], lengths) + np.arange(total, dtype=np.int64)
    return new_indptr, flat


def _to_local(owned: np.ndarray, halo: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Map global ids to shard-local ids (owned first, then halo)."""
    nodes = np.asarray(nodes, dtype=np.int64)
    if len(owned) == 0:
        return len(owned) + np.searchsorted(halo, nodes)
    pos = np.searchsorted(owned, nodes)
    clamped = np.minimum(pos, len(owned) - 1)
    is_owned = owned[clamped] == nodes
    return np.where(is_owned, clamped, len(owned) + np.searchsorted(halo, nodes))


class GraphShard:
    """One edge-cut shard: compact CSR over owned nodes + halo ghosts."""

    __slots__ = (
        "shard_id",
        "num_shards",
        "num_global_nodes",
        "directed",
        "owned",
        "halo",
        "halo_owner",
        "global_ids",
        "out_indptr",
        "out_local",
        "out_weights",
        "in_indptr",
        "in_local",
        "in_weights",
        "source_path",
        "_mmap",
    )

    def __init__(
        self,
        shard_id: int,
        num_shards: int,
        num_global_nodes: int,
        directed: bool,
        owned: np.ndarray,
        halo: np.ndarray,
        halo_owner: np.ndarray,
        out_indptr: np.ndarray,
        out_local: np.ndarray,
        out_weights: np.ndarray,
        in_indptr: np.ndarray,
        in_local: np.ndarray,
        in_weights: np.ndarray,
        *,
        source_path: str | None = None,
        mapped=None,
    ) -> None:
        self.shard_id = int(shard_id)
        self.num_shards = int(num_shards)
        self.num_global_nodes = int(num_global_nodes)
        self.directed = bool(directed)
        self.owned = owned
        self.halo = halo
        self.halo_owner = halo_owner
        self.global_ids = (
            np.concatenate([owned, halo]) if len(halo) else np.asarray(owned)
        )
        self.out_indptr = out_indptr
        self.out_local = out_local
        self.out_weights = out_weights
        self.in_indptr = in_indptr
        self.in_local = in_local
        self.in_weights = in_weights
        self.source_path = source_path
        self._mmap = mapped

    @property
    def num_owned(self) -> int:
        return len(self.owned)

    @property
    def num_halo(self) -> int:
        return len(self.halo)

    @property
    def nbytes(self) -> int:
        return sum(
            arr.nbytes
            for arr in (
                self.owned,
                self.halo,
                self.halo_owner,
                self.out_indptr,
                self.out_local,
                self.out_weights,
                self.in_indptr,
                self.in_local,
                self.in_weights,
            )
        )

    def is_owned(self, node: int) -> bool:
        pos = int(np.searchsorted(self.owned, node))
        return pos < len(self.owned) and int(self.owned[pos]) == node

    def owned_position(self, node: int) -> int:
        pos = int(np.searchsorted(self.owned, node))
        if pos >= len(self.owned) or int(self.owned[pos]) != node:
            raise GraphError(
                f"node {node} is not owned by shard {self.shard_id}"
            )
        return pos

    def halo_owner_of(self, node: int) -> int:
        pos = int(np.searchsorted(self.halo, node))
        if pos >= len(self.halo) or int(self.halo[pos]) != node:
            raise GraphError(
                f"node {node} is neither owned by nor a halo of shard {self.shard_id}"
            )
        return int(self.halo_owner[pos])

    def owner_of(self, node: int) -> int:
        """Owning shard of any node visible to this shard."""
        if self.is_owned(node):
            return self.shard_id
        return self.halo_owner_of(node)

    def to_local(self, nodes: np.ndarray) -> np.ndarray:
        return _to_local(self.owned, self.halo, nodes)

    def out_row(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """Out-neighbours (global ids, parent row order) and weights."""
        pos = self.owned_position(node)
        window = slice(int(self.out_indptr[pos]), int(self.out_indptr[pos + 1]))
        return self.global_ids[self.out_local[window]], self.out_weights[window]

    def in_row(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """In-neighbours (global ids, parent row order) and weights."""
        pos = self.owned_position(node)
        window = slice(int(self.in_indptr[pos]), int(self.in_indptr[pos + 1]))
        return self.global_ids[self.in_local[window]], self.in_weights[window]

    def save(self, path: str | os.PathLike) -> str:
        """Persist this shard in ``write_checksummed`` framing."""
        header = {
            "version": 1,
            "byteorder": sys.byteorder,
            "shard_id": self.shard_id,
            "num_shards": self.num_shards,
            "num_global_nodes": self.num_global_nodes,
            "directed": self.directed,
            "num_owned": self.num_owned,
            "num_halo": self.num_halo,
            "num_out_arcs": int(len(self.out_local)),
            "num_in_arcs": int(len(self.in_local)),
        }
        parts = [json.dumps(header, sort_keys=True).encode("utf-8"), b"\n"]
        for arr, dtype in self._array_layout():
            parts.append(np.ascontiguousarray(arr, dtype=dtype).tobytes())
        return write_checksummed(path, SHARD_MAGIC, b"".join(parts))

    def _array_layout(self):
        return (
            (self.owned, np.int64),
            (self.halo, np.int64),
            (self.halo_owner, np.int64),
            (self.out_indptr, np.int64),
            (self.out_local, np.int64),
            (self.out_weights, np.float64),
            (self.in_indptr, np.int64),
            (self.in_local, np.int64),
            (self.in_weights, np.float64),
        )

    def __reduce__(self):
        if self.source_path is not None:
            return (load_shard, (self.source_path,))
        state = tuple(np.asarray(arr) for arr, _ in self._array_layout())
        return (
            _shard_from_arrays,
            (
                self.shard_id,
                self.num_shards,
                self.num_global_nodes,
                self.directed,
            )
            + state,
        )


def _shard_from_arrays(
    shard_id, num_shards, num_global_nodes, directed, *arrays
) -> GraphShard:
    return GraphShard(shard_id, num_shards, num_global_nodes, directed, *arrays)


def load_shard(path: str | os.PathLike) -> GraphShard:
    """Load one shard file, streaming-verified then memory-mapped."""
    path = os.fspath(path)
    try:
        mapped, offset, size = map_checksummed(path, SHARD_MAGIC, kind="graph shard")
    except Exception as error:  # TrainingError from the framing layer
        raise GraphError(str(error)) from error
    newline = mapped.find(b"\n", offset, offset + size)
    if newline < 0:
        raise GraphError(f"{path} has a malformed graph shard header")
    try:
        header = json.loads(mapped[offset:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise GraphError(f"{path} has a malformed graph shard header") from error
    if header.get("byteorder") != sys.byteorder:
        raise GraphError(
            f"{path} was written on a {header.get('byteorder')}-endian machine; "
            f"this machine is {sys.byteorder}-endian"
        )
    num_owned = int(header["num_owned"])
    num_halo = int(header["num_halo"])
    num_out = int(header["num_out_arcs"])
    num_in = int(header["num_in_arcs"])

    cursor = newline + 1
    views = []
    layout = (
        (num_owned, np.int64),
        (num_halo, np.int64),
        (num_halo, np.int64),
        (num_owned + 1, np.int64),
        (num_out, np.int64),
        (num_out, np.float64),
        (num_owned + 1, np.int64),
        (num_in, np.int64),
        (num_in, np.float64),
    )
    for count, dtype in layout:
        nbytes = count * np.dtype(dtype).itemsize
        if cursor + nbytes > offset + size:
            raise GraphError(
                f"{path} is truncated: graph shard payload shorter than its header promises"
            )
        view = np.frombuffer(mapped, dtype=dtype, count=count, offset=cursor)
        views.append(view)
        cursor += nbytes
    if cursor != offset + size:
        raise GraphError(
            f"{path} graph shard payload holds {offset + size - cursor} trailing bytes"
        )
    return GraphShard(
        int(header["shard_id"]),
        int(header["num_shards"]),
        int(header["num_global_nodes"]),
        bool(header["directed"]),
        *views,
        source_path=path,
        mapped=mapped,
    )


@dataclass
class ShardSet:
    """A full edge-cut sharding of one graph (halo mode — lossless)."""

    shards: list[GraphShard]
    assignment: np.ndarray
    num_nodes: int
    num_arcs: int
    directed: bool
    method: str
    source_dir: str | None = None

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def owner_of(self, node: int) -> int:
        return int(self.assignment[node])

    def stats(self) -> PartitionStats:
        """Edge-cut statistics; in halo mode cut arcs are kept, not dropped."""
        sizes = np.bincount(self.assignment, minlength=self.num_shards)
        cut = 0
        for shard in self.shards:
            cut += int(np.count_nonzero(shard.out_local >= shard.num_owned))
        return PartitionStats(
            num_parts=self.num_shards,
            method=self.method,
            sizes=tuple(int(s) for s in sizes),
            cut_arcs=cut,
            total_arcs=self.num_arcs,
        )

    def reassemble(self) -> Graph:
        """Rebuild the original graph bit-exactly from the shards."""
        num_nodes = self.num_nodes

        def rebuild(kind: str):
            counts = np.zeros(num_nodes, dtype=np.int64)
            for shard in self.shards:
                indptr = shard.out_indptr if kind == "out" else shard.in_indptr
                counts[shard.owned] = np.diff(indptr)
            indptr_global = np.zeros(num_nodes + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr_global[1:])
            total = int(indptr_global[-1])
            indices = np.empty(total, dtype=np.int64)
            weights = np.empty(total, dtype=np.float64)
            for shard in self.shards:
                if kind == "out":
                    indptr, local, shard_weights = (
                        shard.out_indptr,
                        shard.out_local,
                        shard.out_weights,
                    )
                else:
                    indptr, local, shard_weights = (
                        shard.in_indptr,
                        shard.in_local,
                        shard.in_weights,
                    )
                lengths = np.diff(indptr)
                dest = np.repeat(
                    indptr_global[shard.owned] - indptr[:-1], lengths
                ) + np.arange(int(indptr[-1]), dtype=np.int64)
                indices[dest] = shard.global_ids[local]
                weights[dest] = shard_weights
            return indptr_global, indices, weights

        return Graph.from_csr(
            num_nodes, rebuild("out"), rebuild("in"), directed=self.directed
        )

    def save(self, directory: str | os.PathLike) -> str:
        """Persist the shard set to ``directory`` (created if needed)."""
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        names = []
        for shard in self.shards:
            name = _shard_filename(shard.shard_id)
            shard.save(os.path.join(directory, name))
            names.append(name)
        header = {
            "version": 1,
            "byteorder": sys.byteorder,
            "num_shards": self.num_shards,
            "num_nodes": self.num_nodes,
            "num_arcs": self.num_arcs,
            "directed": self.directed,
            "method": self.method,
            "shards": names,
        }
        payload = json.dumps(header, sort_keys=True).encode("utf-8") + b"\n"
        payload += np.ascontiguousarray(self.assignment, dtype=np.int64).tobytes()
        write_checksummed(os.path.join(directory, SHARDSET_INDEX), SHARDSET_MAGIC, payload)
        self.source_dir = directory
        return directory

    @classmethod
    def load(cls, directory: str | os.PathLike, *, load_shards: bool = True) -> "ShardSet":
        """Load a saved shard set.

        With ``load_shards=False`` only the index (assignment + manifest)
        is read and ``shards`` is left empty — what the coordinator needs
        when worker processes will map their own shard files.
        """
        directory = os.fspath(directory)
        index_path = os.path.join(directory, SHARDSET_INDEX)
        try:
            payload = read_checksummed(index_path, SHARDSET_MAGIC, kind="shard set index")
        except Exception as error:
            raise GraphError(str(error)) from error
        newline = payload.find(b"\n")
        if newline < 0:
            raise GraphError(f"{index_path} has a malformed shard set index header")
        try:
            header = json.loads(payload[:newline].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise GraphError(
                f"{index_path} has a malformed shard set index header"
            ) from error
        if header.get("byteorder") != sys.byteorder:
            raise GraphError(
                f"{index_path} was written on a {header.get('byteorder')}-endian "
                f"machine; this machine is {sys.byteorder}-endian"
            )
        num_nodes = int(header["num_nodes"])
        assignment = np.frombuffer(payload, dtype=np.int64, count=num_nodes, offset=newline + 1)
        if len(assignment) != num_nodes:
            raise GraphError(f"{index_path} is truncated: assignment array incomplete")
        names = list(header["shards"])
        shards: list[GraphShard] = []
        if load_shards:
            for name in names:
                shard = load_shard(os.path.join(directory, name))
                if shard.num_global_nodes != num_nodes:
                    raise GraphError(
                        f"shard {name} disagrees with the shard set index about "
                        "the global node count"
                    )
                shards.append(shard)
        shard_set = cls(
            shards=shards,
            assignment=assignment,
            num_nodes=num_nodes,
            num_arcs=int(header["num_arcs"]),
            directed=bool(header["directed"]),
            method=str(header.get("method", "unknown")),
            source_dir=directory,
        )
        return shard_set

    def shard_paths(self) -> list[str] | None:
        """Per-shard file paths when this set was saved/loaded from disk."""
        if self.source_dir is None:
            return None
        return [
            os.path.join(self.source_dir, _shard_filename(i))
            for i in range(self.num_shards)
        ]


def build_shard_set(
    graph: Graph,
    num_shards: int,
    *,
    method: str = "bfs",
    rng: int | np.random.Generator | None = None,
    assignment: np.ndarray | None = None,
    obs=None,
) -> ShardSet:
    """Shard ``graph`` into ``num_shards`` edge-cut partitions with halos.

    Unlike :func:`repro.graphs.partition_graph`, no arc is dropped: each
    shard keeps the full out/in rows of its owned nodes, with cross-shard
    endpoints stored as halo ghosts.  ``assignment`` lets callers reuse a
    precomputed partition; otherwise
    :func:`repro.graphs.partition.partition_assignment` runs with the given
    ``method``/``rng``.
    """
    if assignment is None:
        assignment = partition_assignment(graph, num_shards, method=method, rng=rng)
    else:
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (graph.num_nodes,):
            raise GraphError("assignment must have one entry per node")
        if assignment.size and (assignment.min() < 0 or assignment.max() >= num_shards):
            raise GraphError("assignment references shards outside range")

    out_indptr, out_indices, out_weights = graph.out_csr()
    in_indptr, in_indices, in_weights = graph.in_csr()

    shards: list[GraphShard] = []
    for shard_id in range(num_shards):
        owned = np.flatnonzero(assignment == shard_id)
        o_indptr, o_flat = _row_gather(out_indptr, owned)
        o_targets = out_indices[o_flat]
        o_weights = out_weights[o_flat]
        i_indptr, i_flat = _row_gather(in_indptr, owned)
        i_sources = in_indices[i_flat]
        i_weights = in_weights[i_flat]
        if len(o_targets) or len(i_sources):
            neighbours = np.unique(np.concatenate([o_targets, i_sources]))
            halo = neighbours[assignment[neighbours] != shard_id]
        else:
            halo = np.empty(0, dtype=np.int64)
        halo_owner = assignment[halo]
        shards.append(
            GraphShard(
                shard_id,
                num_shards,
                graph.num_nodes,
                graph.is_directed,
                owned,
                halo,
                halo_owner,
                o_indptr,
                _to_local(owned, halo, o_targets),
                o_weights,
                i_indptr,
                _to_local(owned, halo, i_sources),
                i_weights,
            )
        )
    shard_set = ShardSet(
        shards=shards,
        assignment=assignment,
        num_nodes=graph.num_nodes,
        num_arcs=int(len(out_indices)),
        directed=graph.is_directed,
        method=method,
    )
    if obs is not None:
        stats = shard_set.stats()
        obs.event("sharding.partition", halo_mode=True, **stats.as_dict())
    return shard_set
