"""Sharded sampling coordinator: globally exact caps across shards.

Drives the shard hosts of :mod:`repro.sharding.runtime` through the same
chunk-synchronous propose/validate protocol ``sampling/parallel.py`` uses,
extended with cross-shard frontier exchange:

1. **Select** starts with the master generator, exactly as the serial
   sampler does (same draws, same order).
2. **Propose**: each start walks under its own child RNG stream on the
   shard that owns its current node; a walk stepping onto a halo node is
   suspended and forwarded — carrying its generator — to the owner shard
   (BSP rounds, ``stats.exchange_rounds`` / ``stats.frontier_forwards``).
3. **Validate**: the coordinator checks every finished walk *in start
   order* against the live global occurrence counts and rejects any walk
   touching a node at the cap, so ``N_g`` / ``N_g* = M`` hold exactly no
   matter how many shards or workers ran the walks.
4. **Induce + emit**: accepted node sets are induced distributedly (each
   shard contributes the arcs of its owned rows) and emitted in start
   order, so the output container is bit-identical to the serial sampler
   on the reassembled graph — for every (num_shards, workers) pair.

The master generator is consumed only for: the θ-projection draws (naive),
the Bernoulli(q) selection mask per pass, and one root-entropy draw per
pass — the identical consumption sequence of the serial engine, which is
what makes the differential tests exact.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SamplingError
from repro.graphs.graph import Graph
from repro.obs import Observability, ensure_obs
from repro.sampling.container import Subgraph, SubgraphContainer
from repro.sampling.frequency import FrequencyVector
from repro.sampling.parallel import SamplingStats, _chunks
from repro.sharding.partition import GraphShard, ShardSet
from repro.sharding.runtime import ShardRuntime
from repro.sharding.walker import WalkParams, WalkTask
from repro.utils.rng import child_generator, derive_root_entropy, ensure_rng

__all__ = [
    "ShardedSamplingStats",
    "ShardedNaiveRun",
    "ShardedDualStageRun",
    "sample_naive_sharded",
    "sample_dual_stage_sharded",
]


@dataclass
class ShardedSamplingStats(SamplingStats):
    """Engine counters plus frontier-exchange accounting."""

    num_shards: int = 1
    frontier_forwards: int = 0
    exchange_rounds: int = 0
    shard_seconds: dict[int, float] = field(default_factory=dict)
    shard_walks: dict[int, int] = field(default_factory=dict)
    transport: str = "local"
    frames_sent: int = 0
    frames_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    exchange_wait_seconds: float = 0.0


@dataclass
class ShardedNaiveRun:
    """Outcome of :func:`sample_naive_sharded`."""

    container: SubgraphContainer
    stats: ShardedSamplingStats
    projected_shards: list[GraphShard] | None = None

    def reassemble_projected(self) -> Graph:
        """Rebuild the θ-projected graph from the per-shard projections
        (available when sampling ran with ``return_projection=True``)."""
        if self.projected_shards is None:
            raise SamplingError(
                "projection was not exported; pass return_projection=True"
            )
        template = self.projected_shards[0]
        shard_set = ShardSet(
            shards=self.projected_shards,
            assignment=np.empty(0, dtype=np.int64),
            num_nodes=template.num_global_nodes,
            num_arcs=sum(len(s.out_local) for s in self.projected_shards),
            directed=template.directed,
            method="projected",
        )
        return shard_set.reassemble()


@dataclass
class ShardedDualStageRun:
    """Outcome of :func:`sample_dual_stage_sharded`."""

    container: SubgraphContainer
    frequency: FrequencyVector
    stage1_count: int
    stage2_count: int
    stats: ShardedSamplingStats


# --------------------------------------------------------------------------- #
# building blocks
# --------------------------------------------------------------------------- #
def _run_walks(
    runtime: ShardRuntime,
    assignment: np.ndarray,
    tasks: list[WalkTask],
    stats: ShardedSamplingStats,
) -> dict[int, list[int] | None]:
    """Pipelined frontier-exchange loop; returns ``{key: nodes_or_None}``.

    All initial batches scatter before the first receive, and each poll
    round forwards whatever walks have come back without waiting for the
    slowest shard — shard *i*'s outbound batch is serialized while shard
    *j*'s reply is still in flight.  Every walk carries its own child RNG
    stream, so the interleaving is pure scheduling: results are identical
    to the strict BSP loop walk-for-walk.
    """
    results: dict[int, list[int] | None] = {}
    initial: dict[int, list[WalkTask]] = {}
    for task in tasks:
        initial.setdefault(int(assignment[task.start]), []).append(task)
    began = time.perf_counter()
    runtime.scatter("walks", initial)
    while runtime.outstanding:
        responses = runtime.poll(block=True)
        stats.exchange_rounds += 1
        pending: dict[int, list[WalkTask]] = {}
        for shard_id, response in sorted(responses, key=lambda item: item[0]):
            for key, nodes in response["finished"]:
                results[key] = nodes
            for dest in sorted(response["forward"]):
                walks = response["forward"][dest]
                stats.frontier_forwards += len(walks)
                pending.setdefault(int(dest), []).extend(walks)
        # Per-round coalescing: every forwarded walk bound for the same
        # shard travels in one batch (one frame per host on the wire).
        runtime.scatter("walks", pending)
    stats.exchange_wait_seconds += time.perf_counter() - began
    return results


def _expand_balls(
    runtime: ShardRuntime,
    assignment: np.ndarray,
    starts: np.ndarray,
    hops: int,
    direction: str,
    use_projected: bool,
) -> dict[int, set[int]]:
    """Distributed r-hop balls: lockstep BFS, rows served by owner shards."""
    balls: dict[int, set[int]] = {int(s): {int(s)} for s in starts}
    frontiers: dict[int, list[int]] = {int(s): [int(s)] for s in starts}
    for _depth in range(hops):
        needed = sorted({node for frontier in frontiers.values() for node in frontier})
        if not needed:
            break
        by_shard: dict[int, list[int]] = {}
        for node in needed:
            by_shard.setdefault(int(assignment[node]), []).append(node)
        responses = runtime.request(
            "ball_rows",
            {
                shard_id: {
                    "nodes": np.asarray(nodes, dtype=np.int64),
                    "direction": direction,
                    "use_projected": use_projected,
                }
                for shard_id, nodes in by_shard.items()
            },
        )
        rows: dict[int, np.ndarray] = {}
        for shard_id in sorted(responses):
            rows.update(responses[shard_id])
        next_frontiers: dict[int, list[int]] = {}
        for start in frontiers:
            ball = balls[start]
            grown: list[int] = []
            for node in frontiers[start]:
                for neighbour in rows[node]:
                    neighbour = int(neighbour)
                    if neighbour not in ball:
                        ball.add(neighbour)
                        grown.append(neighbour)
            next_frontiers[start] = grown
        frontiers = next_frontiers
    return balls


def _build_induced(
    node_array: np.ndarray,
    sources: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    directed: bool,
) -> Graph:
    """Assemble an induced subgraph exactly as ``Graph.subgraph`` would."""
    order_positions = np.argsort(node_array)
    sorted_ids = node_array[order_positions]
    if len(sources):
        local_sources = order_positions[np.searchsorted(sorted_ids, sources)]
        local_targets = order_positions[np.searchsorted(sorted_ids, targets)]
        edges = np.stack([local_sources, local_targets], axis=1)
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    subgraph = Graph(len(node_array), edges, weights, directed=True)
    subgraph.is_directed = directed
    return subgraph


def _induce_subgraphs(
    runtime: ShardRuntime,
    assignment: np.ndarray,
    node_lists: list[np.ndarray],
    directed: bool,
    use_projected: bool,
) -> list[Graph]:
    """Distributed induction of many node sets, preserving list order."""
    if not node_lists:
        return []
    requests_by_shard: dict[int, list] = {}
    metadata: list[tuple[np.ndarray, list[int]]] = []
    for request_id, nodes in enumerate(node_lists):
        node_array = np.asarray(nodes, dtype=np.int64)
        sorted_nodes = np.sort(node_array)
        owners = sorted(int(owner) for owner in np.unique(assignment[node_array]))
        metadata.append((node_array, owners))
        for owner in owners:
            requests_by_shard.setdefault(owner, []).append((request_id, sorted_nodes))
    responses = runtime.request(
        "induce",
        {
            shard_id: {"requests": requests, "use_projected": use_projected}
            for shard_id, requests in requests_by_shard.items()
        },
    )
    subgraphs: list[Graph] = []
    for request_id, (node_array, owners) in enumerate(metadata):
        fragments = [responses[owner][request_id] for owner in owners]
        sources = np.concatenate([fragment[0] for fragment in fragments])
        targets = np.concatenate([fragment[1] for fragment in fragments])
        weights = np.concatenate([fragment[2] for fragment in fragments])
        # Each global source lives in exactly one fragment, so a stable
        # sort by source reproduces edge_arrays() order: ascending source,
        # original row order within each source.
        order = np.argsort(sources, kind="stable")
        subgraphs.append(
            _build_induced(
                node_array, sources[order], targets[order], weights[order], directed
            )
        )
    return subgraphs


def _distributed_projection(
    runtime: ShardRuntime,
    shard_set: ShardSet,
    theta: int,
    generator: np.random.Generator,
) -> None:
    """Distributed θ-projection, draw-for-draw with ``project_in_degree``.

    Phase A gathers in-degrees; phase B replays the serial keep draws on
    the coordinator (node order 0..N-1, one ``choice`` per over-θ node);
    phase C has owner shards build their projected in rows and emit out-arc
    fragments to each source's owner; phase D assembles the projected out
    rows.  The projection stays sharded — it is never materialised whole.
    """
    num_nodes = shard_set.num_nodes
    responses = runtime.broadcast("in_degrees", None)
    in_degrees = np.zeros(num_nodes, dtype=np.int64)
    for shard_id in sorted(responses):
        owned, degrees = responses[shard_id]
        in_degrees[owned] = degrees

    keep_by_shard: dict[int, dict[int, np.ndarray]] = {
        shard_id: {} for shard_id in range(shard_set.num_shards)
    }
    assignment = shard_set.assignment
    for node in range(num_nodes):
        degree = int(in_degrees[node])
        if degree > theta:
            keep = generator.choice(degree, size=theta, replace=False)
            keep_by_shard[int(assignment[node])][node] = keep

    keep_responses = runtime.request(
        "project_keep",
        {
            shard_id: {"keep": keep_by_shard[shard_id]}
            for shard_id in range(shard_set.num_shards)
        },
    )
    fragments_by_dest: dict[int, list] = {
        shard_id: [] for shard_id in range(shard_set.num_shards)
    }
    for shard_id in sorted(keep_responses):
        shard_fragments = keep_responses[shard_id]
        for dest in sorted(shard_fragments):
            fragments_by_dest[int(dest)].append(shard_fragments[dest])
    runtime.request(
        "project_out",
        {
            shard_id: {"fragments": fragments_by_dest[shard_id]}
            for shard_id in range(shard_set.num_shards)
        },
    )


def _collect_shard_stats(
    runtime: ShardRuntime, stats: ShardedSamplingStats, obs: Observability
) -> None:
    stats.transport = runtime.transport_name
    wire = runtime.transport.stats
    stats.frames_sent = wire.frames_sent
    stats.frames_received = wire.frames_received
    stats.bytes_sent = wire.bytes_sent
    stats.bytes_received = wire.bytes_received
    for shard_id, shard_stats in sorted(runtime.stats().items()):
        stats.shard_seconds[shard_id] = float(shard_stats["seconds"])
        stats.shard_walks[shard_id] = int(shard_stats["walks_advanced"])
        if obs.enabled:
            obs.gauge(f"sampling.shard.{shard_id:02d}.seconds").set(
                float(shard_stats["seconds"])
            )


def _publish_sharded_stats(
    obs: Observability, algorithm: str, stats: ShardedSamplingStats
) -> None:
    if not obs.enabled:
        return
    obs.counter("sampling.starts_selected").inc(stats.starts_selected)
    obs.counter("sampling.starts_skipped").inc(stats.starts_skipped)
    obs.counter("sampling.walks_attempted").inc(stats.walks_attempted)
    obs.counter("sampling.walks_failed").inc(stats.walks_failed)
    obs.counter("sampling.walks_rejected").inc(stats.walks_rejected)
    obs.counter("sampling.subgraphs_emitted").inc(stats.subgraphs_emitted)
    obs.counter("sampling.sharded.frontier_forwards").inc(stats.frontier_forwards)
    obs.counter("sampling.sharded.exchange_rounds").inc(stats.exchange_rounds)
    obs.counter("sampling.transport.frames_sent").inc(stats.frames_sent)
    obs.counter("sampling.transport.frames_received").inc(stats.frames_received)
    obs.counter("sampling.transport.bytes_sent").inc(stats.bytes_sent)
    obs.counter("sampling.transport.bytes_received").inc(stats.bytes_received)
    obs.gauge("sampling.transport.exchange_wait_seconds").set(
        stats.exchange_wait_seconds
    )
    obs.gauge("sampling.cap_hit_rate").set(stats.cap_hit_rate)
    obs.event(
        "sampling",
        algorithm=algorithm,
        workers=stats.workers,
        num_shards=stats.num_shards,
        chunk_size=stats.chunk_size,
        starts_selected=stats.starts_selected,
        starts_skipped=stats.starts_skipped,
        walks_attempted=stats.walks_attempted,
        walks_failed=stats.walks_failed,
        walks_rejected=stats.walks_rejected,
        subgraphs_emitted=stats.subgraphs_emitted,
        cap_hit_rate=stats.cap_hit_rate,
        frontier_forwards=stats.frontier_forwards,
        exchange_rounds=stats.exchange_rounds,
        transport=stats.transport,
        frames_sent=stats.frames_sent,
        frames_received=stats.frames_received,
        bytes_sent=stats.bytes_sent,
        bytes_received=stats.bytes_received,
        exchange_wait_seconds=stats.exchange_wait_seconds,
        stage_seconds=dict(stats.stage_seconds),
        shard_seconds={str(k): v for k, v in stats.shard_seconds.items()},
    )


# --------------------------------------------------------------------------- #
# Algorithm 1 — sharded
# --------------------------------------------------------------------------- #
def sample_naive_sharded(
    shard_set: ShardSet,
    config,
    rng: int | np.random.Generator | None = None,
    *,
    workers: int = 1,
    obs: Observability | None = None,
    sink=None,
    return_projection: bool = False,
    transport: str | None = None,
    shard_hosts=None,
) -> ShardedNaiveRun:
    """Run Algorithm 1 across edge-cut shards, bit-identical to
    :func:`repro.sampling.sample_naive` on the reassembled graph.

    ``workers`` counts shard-worker *processes* (shards are assigned
    round-robin); ``config`` is the usual
    :class:`~repro.sampling.naive.NaiveSamplingConfig`; ``transport``
    picks the shard channel (``local``/``fork``/``tcp``, default: local
    for one worker, fork beyond) and ``shard_hosts`` lists running
    ``repro shard-host`` addresses for the TCP backend.
    """
    config.validate()
    obs = ensure_obs(obs)
    generator = ensure_rng(rng)
    assignment = shard_set.assignment
    stats = ShardedSamplingStats(
        chunk_size=config.chunk_size, num_shards=shard_set.num_shards
    )
    stats.stage_seconds["projection"] = 0.0
    stats.stage_seconds["walks"] = 0.0
    container = SubgraphContainer() if sink is None else sink
    projected_shards = None

    with ShardRuntime(
        shard_set,
        workers=workers,
        snapshot=False,
        transport=transport,
        shard_hosts=shard_hosts,
        obs=obs,
    ) as runtime:
        stats.workers = runtime.workers
        with obs.span("sampling.projection") as span:
            _distributed_projection(runtime, shard_set, config.theta, generator)
        stats.stage_seconds["projection"] = span.seconds

        selected = np.flatnonzero(
            generator.random(shard_set.num_nodes) < config.sampling_rate
        )
        root = derive_root_entropy(generator)
        stats.starts_selected = int(len(selected))

        params = WalkParams(
            kind="uniform",
            target_size=config.subgraph_size,
            walk_length=config.walk_length,
            restart_probability=config.restart_probability,
            direction=config.direction,
            use_projected=True,
        )
        runtime.broadcast("stage", {"params": params, "availability": None})

        with obs.span("sampling.walks") as span:
            for chunk in _chunks(selected, config.chunk_size):
                balls = _expand_balls(
                    runtime, assignment, chunk, config.hops, config.direction, True
                )
                statuses: list[tuple[int, bool]] = []
                tasks: list[WalkTask] = []
                for node in chunk:
                    node = int(node)
                    if len(balls[node]) < config.subgraph_size:
                        statuses.append((node, True))
                        continue
                    statuses.append((node, False))
                    tasks.append(
                        WalkTask(
                            key=node,
                            start=node,
                            start_owner=int(assignment[node]),
                            current=node,
                            steps=0,
                            restart_drawn=False,
                            visited=[node],
                            generator=child_generator(root, node),
                            allowed=frozenset(balls[node]),
                        )
                    )
                results = _run_walks(runtime, assignment, tasks, stats)
                accepted: list[np.ndarray] = []
                accept_order: list[int] = []
                for node, skipped in statuses:
                    if skipped:
                        stats.starts_skipped += 1
                        continue
                    stats.walks_attempted += 1
                    nodes = results[node]
                    if nodes is None:
                        stats.walks_failed += 1
                        continue
                    accepted.append(np.asarray(nodes, dtype=np.int64))
                    accept_order.append(node)
                subgraphs = _induce_subgraphs(
                    runtime, assignment, accepted, shard_set.directed, True
                )
                for node_map, subgraph in zip(accepted, subgraphs):
                    container.add(Subgraph(subgraph, node_map))
                    stats.subgraphs_emitted += 1
        stats.stage_seconds["walks"] = span.seconds

        if return_projection:
            projections = runtime.broadcast("export_projection", None)
            projected_shards = []
            for shard_id in sorted(projections):
                base = shard_set.shards[shard_id]
                projected_shards.append(
                    GraphShard(
                        base.shard_id,
                        base.num_shards,
                        base.num_global_nodes,
                        base.directed,
                        base.owned,
                        base.halo,
                        base.halo_owner,
                        *projections[shard_id],
                    )
                )
        _collect_shard_stats(runtime, stats, obs)

    _publish_sharded_stats(obs, "naive_sharded", stats)
    return ShardedNaiveRun(
        container=container, stats=stats, projected_shards=projected_shards
    )


# --------------------------------------------------------------------------- #
# Algorithm 3 — sharded
# --------------------------------------------------------------------------- #
def _frequency_pass_sharded(
    runtime: ShardRuntime,
    assignment: np.ndarray,
    frequency: FrequencyVector,
    walk_to_global: np.ndarray,
    availability: np.ndarray | None,
    subgraph_size: int,
    config,
    generator: np.random.Generator,
    container,
    stats: ShardedSamplingStats,
    directed: bool,
) -> int:
    """One chunk-synchronous FreqSampling pass across shards.

    Mirrors ``sampling.parallel._frequency_pass`` exactly, with the live
    counts and the published snapshot held in *global* id space (the
    serial pass holds walk-local views of the same values, so the draws
    and validation outcomes coincide draw-for-draw).
    """
    live = frequency.counts.copy()
    selected = np.flatnonzero(
        generator.random(len(walk_to_global)) < config.sampling_rate
    )
    root = derive_root_entropy(generator)
    stats.starts_selected += int(len(selected))
    if not len(selected):
        return 0

    params = WalkParams(
        kind="frequency",
        target_size=subgraph_size,
        walk_length=config.walk_length,
        restart_probability=config.restart_probability,
        direction=config.direction,
        threshold=config.threshold,
        decay=config.decay,
    )
    runtime.broadcast("stage", {"params": params, "availability": availability})

    emitted = 0
    for chunk in _chunks(selected, config.chunk_size):
        runtime.write_snapshot(live)
        statuses: list[tuple[int, bool]] = []
        tasks: list[WalkTask] = []
        for local in chunk:
            local = int(local)
            start = int(walk_to_global[local])
            if live[start] >= config.threshold:
                statuses.append((local, True))
                continue
            statuses.append((local, False))
            tasks.append(
                WalkTask(
                    key=local,
                    start=start,
                    start_owner=int(assignment[start]),
                    current=start,
                    steps=0,
                    restart_drawn=False,
                    visited=[start],
                    generator=child_generator(root, local),
                )
            )
        results = _run_walks(runtime, assignment, tasks, stats)
        accepted: list[np.ndarray] = []
        for local, skipped in statuses:
            if skipped:
                stats.starts_skipped += 1
                continue
            stats.walks_attempted += 1
            nodes = results[local]
            if nodes is None:
                stats.walks_failed += 1
                continue
            node_map = np.asarray(nodes, dtype=np.int64)
            if np.any(live[node_map] >= config.threshold):
                stats.walks_rejected += 1
                continue
            live[node_map] += 1
            frequency.record_subgraph(node_map)
            accepted.append(node_map)
        subgraphs = _induce_subgraphs(runtime, assignment, accepted, directed, False)
        for node_map, subgraph in zip(accepted, subgraphs):
            container.add(Subgraph(subgraph, node_map))
            emitted += 1
    stats.subgraphs_emitted += emitted
    return emitted


def sample_dual_stage_sharded(
    shard_set: ShardSet,
    config,
    rng: int | np.random.Generator | None = None,
    *,
    workers: int = 1,
    obs: Observability | None = None,
    sink=None,
    transport: str | None = None,
    shard_hosts=None,
) -> ShardedDualStageRun:
    """Run Algorithm 3 across edge-cut shards with globally exact caps,
    bit-identical to :func:`repro.sampling.sample_dual_stage` on the
    reassembled graph for every (num_shards, workers, transport) triple.
    """
    config.validate()
    obs = ensure_obs(obs)
    generator = ensure_rng(rng)
    assignment = shard_set.assignment
    num_nodes = shard_set.num_nodes
    stats = ShardedSamplingStats(
        chunk_size=config.chunk_size, num_shards=shard_set.num_shards
    )
    stats.stage_seconds["stage1"] = 0.0
    stats.stage_seconds["stage2"] = 0.0

    frequency = FrequencyVector(num_nodes, config.threshold)
    container = SubgraphContainer() if sink is None else sink

    with ShardRuntime(
        shard_set,
        workers=workers,
        snapshot=True,
        transport=transport,
        shard_hosts=shard_hosts,
        obs=obs,
    ) as runtime:
        stats.workers = runtime.workers
        with obs.span("sampling.stage1") as span:
            stage1_count = _frequency_pass_sharded(
                runtime,
                assignment,
                frequency,
                np.arange(num_nodes, dtype=np.int64),
                None,
                config.subgraph_size,
                config,
                generator,
                container,
                stats,
                shard_set.directed,
            )
        stats.stage_seconds["stage1"] = span.seconds

        stage2_count = 0
        if config.include_boundary:
            with obs.span("sampling.stage2") as span:
                remaining = frequency.available_nodes()
                if len(remaining) >= config.boundary_subgraph_size:
                    availability = np.zeros(num_nodes, dtype=bool)
                    availability[remaining] = True
                    stage2_count = _frequency_pass_sharded(
                        runtime,
                        assignment,
                        frequency,
                        remaining,
                        availability,
                        config.boundary_subgraph_size,
                        config,
                        generator,
                        container,
                        stats,
                        shard_set.directed,
                    )
            stats.stage_seconds["stage2"] = span.seconds
        _collect_shard_stats(runtime, stats, obs)

    _publish_sharded_stats(obs, "dual_stage_sharded", stats)
    return ShardedDualStageRun(
        container=container,
        frequency=frequency,
        stage1_count=stage1_count,
        stage2_count=stage2_count,
        stats=stats,
    )
