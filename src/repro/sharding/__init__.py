"""Sharded giant-graph engine: edge-cut partitions with halo nodes.

Scales the samplers past single-machine RAM while keeping the DP contract
exact: the dual-stage occurrence caps ``N_g`` / ``N_g* = M`` are enforced
*globally* by the coordinator, and sharded sampling is bit-identical to the
serial single-graph sampler on the reassembled graph for every
(num_shards, workers, transport) triple — shards, workers, and transports
are pure throughput knobs, never sampling parameters.

Modules:

* :mod:`~repro.sharding.partition` — :func:`build_shard_set` /
  :class:`ShardSet`: per-shard compact CSR with halo ghosts, persisted in
  the ``write_checksummed`` framing, loaded back via streaming verify +
  ``mmap``.
* :mod:`~repro.sharding.walker` — resumable walk tasks that carry their
  RNG child stream across shard boundaries.
* :mod:`~repro.sharding.transport` — pluggable shard channels:
  in-process, forked pipes, or TCP frame servers with a zero-copy
  no-pickle codec and pipelined scatter/gather.
* :mod:`~repro.sharding.runtime` — shard hosts behind the configured
  transport, with a shared-memory (or shipped) snapshot channel.
* :mod:`~repro.sharding.coordinator` — :func:`sample_naive_sharded` /
  :func:`sample_dual_stage_sharded`: chunk-synchronous propose/validate
  across shards with pipelined cross-shard frontier exchange.
* :mod:`~repro.sharding.sink` — :class:`ShardedStoreSink`: per-shard
  subgraph stores merged back into emission order.
"""

from repro.sharding.partition import (
    GraphShard,
    ShardSet,
    build_shard_set,
    load_shard,
)
from repro.sharding.walker import WalkParams, WalkTask
from repro.sharding.transport import (
    ForkPipeTransport,
    LocalTransport,
    ShardHostServer,
    ShardTransport,
    TcpTransport,
    TransportStats,
    pack_message,
    resolve_transport,
    unpack_message,
)
from repro.sharding.runtime import ShardRuntime
from repro.sharding.coordinator import (
    ShardedDualStageRun,
    ShardedNaiveRun,
    ShardedSamplingStats,
    sample_dual_stage_sharded,
    sample_naive_sharded,
)
from repro.sharding.sink import ShardedStoreSink

__all__ = [
    "GraphShard",
    "ShardSet",
    "build_shard_set",
    "load_shard",
    "WalkParams",
    "WalkTask",
    "ShardTransport",
    "LocalTransport",
    "ForkPipeTransport",
    "TcpTransport",
    "ShardHostServer",
    "TransportStats",
    "pack_message",
    "unpack_message",
    "resolve_transport",
    "ShardRuntime",
    "ShardedSamplingStats",
    "ShardedNaiveRun",
    "ShardedDualStageRun",
    "sample_naive_sharded",
    "sample_dual_stage_sharded",
    "ShardedStoreSink",
]
