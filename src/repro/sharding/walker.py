"""Resumable random-walk state machine for sharded sampling.

The serial oracle is :func:`repro.sampling.random_walk.random_walk_nodes`:
one restart draw, one chooser draw per step, candidates consumed in CSR row
order ("out"/"in") or sorted-unique order ("both").  A :class:`WalkTask`
carries exactly the state that loop holds between steps — current node,
step count, visited list, and the walk's own child RNG — so a walk can be
suspended mid-step when it lands on a node another shard owns, forwarded to
that shard's worker, and resumed there **without losing or reordering a
single RNG draw**.

The one subtlety is the restart draw: it happens *before* we know which
node the step leaves from (a restart teleports the walk back to its start).
``restart_drawn`` records that the draw for the pending step already
happened, so a walk forwarded after its restart draw does not draw again on
arrival.  Everything else is pure replay of the serial loop against the
local shard's rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sampling.frequency import adaptive_neighbor_probabilities

__all__ = ["WalkParams", "WalkTask", "ShardView", "advance_walk"]


@dataclass(frozen=True)
class WalkParams:
    """Per-pass walk parameters, broadcast once to every shard host."""

    kind: str  # "uniform" (Algorithm 1) or "frequency" (Algorithm 3)
    target_size: int
    walk_length: int
    restart_probability: float
    direction: str
    threshold: int = 0
    decay: float = 1.0
    use_projected: bool = False


@dataclass(slots=True)
class WalkTask:
    """One in-flight walk; picklable so it can cross process boundaries."""

    key: int  # walk-local start id: child-stream key AND validation order
    start: int  # global start node
    start_owner: int
    current: int
    steps: int
    restart_drawn: bool
    visited: list[int]
    generator: np.random.Generator
    allowed: frozenset[int] | None = None
    forwards: int = 0


class ShardView:
    """Worker-side wrapper around one shard: rows, residency, snapshots."""

    def __init__(self, shard) -> None:
        self.shard = shard
        self.shard_id = shard.shard_id
        # Stage-2 availability mask over GLOBAL ids (bool[num_global_nodes])
        # or None when walking the full graph.
        self.availability: np.ndarray | None = None
        # Live-count snapshot over GLOBAL ids, shared across hosts (the
        # chunk-synchronous frequency snapshot of sampling/parallel.py).
        self.snapshot: np.ndarray | None = None
        # Projected CSR installed by the distributed θ-projection:
        # (out_indptr, out_local, out_weights, in_indptr, in_local, in_weights)
        self.projection: tuple | None = None

    # ------------------------------------------------------------------ #
    # residency
    # ------------------------------------------------------------------ #
    def is_owned(self, node: int) -> bool:
        return self.shard.is_owned(node)

    def owner_of(self, node: int) -> int:
        return self.shard.owner_of(node)

    # ------------------------------------------------------------------ #
    # rows
    # ------------------------------------------------------------------ #
    def _out_row(self, node: int, use_projected: bool) -> np.ndarray:
        if use_projected and self.projection is not None:
            indptr, local, _ = self.projection[0], self.projection[1], None
            pos = self.shard.owned_position(node)
            window = slice(int(indptr[pos]), int(indptr[pos + 1]))
            return self.shard.global_ids[local[window]]
        row, _ = self.shard.out_row(node)
        return row

    def _in_row(self, node: int, use_projected: bool) -> np.ndarray:
        if use_projected and self.projection is not None:
            indptr, local = self.projection[3], self.projection[4]
            pos = self.shard.owned_position(node)
            window = slice(int(indptr[pos]), int(indptr[pos + 1]))
            return self.shard.global_ids[local[window]]
        row, _ = self.shard.in_row(node)
        return row

    def walk_candidates(
        self, node: int, direction: str, use_projected: bool
    ) -> np.ndarray:
        """Global candidate ids, ordered exactly as the serial walker sees
        them: row order for "out"/"in", sorted-unique for "both"."""
        if direction == "out":
            return self._out_row(node, use_projected)
        if direction == "in":
            return self._in_row(node, use_projected)
        out_row = self._out_row(node, use_projected)
        in_row = self._in_row(node, use_projected)
        if len(out_row) == 0 and len(in_row) == 0:
            return out_row
        return np.unique(np.concatenate([out_row, in_row]))

    def ball_neighbors(self, node: int, direction: str, use_projected: bool) -> np.ndarray:
        """Neighbour multiset for BFS ball growth (set semantics: order and
        duplicates do not matter, matching ``k_hop_nodes``)."""
        if direction == "out":
            return self._out_row(node, use_projected)
        if direction == "in":
            return self._in_row(node, use_projected)
        return np.concatenate(
            [self._out_row(node, use_projected), self._in_row(node, use_projected)]
        )

    def induced_arcs(
        self, nodes_sorted: np.ndarray, use_projected: bool
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Arcs of the induced subgraph on ``nodes_sorted`` whose source
        this shard owns, as ``(sources, targets, weights)`` in ascending
        source order with original within-row order preserved."""
        members = np.intersect1d(self.shard.owned, nodes_sorted, assume_unique=True)
        sources: list[np.ndarray] = []
        targets: list[np.ndarray] = []
        weights: list[np.ndarray] = []
        for node in members:
            node = int(node)
            if use_projected and self.projection is not None:
                indptr, local, row_weights = (
                    self.projection[0],
                    self.projection[1],
                    self.projection[2],
                )
                pos = self.shard.owned_position(node)
                window = slice(int(indptr[pos]), int(indptr[pos + 1]))
                row = self.shard.global_ids[local[window]]
                row_w = row_weights[window]
            else:
                row, row_w = self.shard.out_row(node)
            if len(row) == 0:
                continue
            keep = np.isin(row, nodes_sorted)
            if not np.any(keep):
                continue
            kept = row[keep]
            sources.append(np.full(len(kept), node, dtype=np.int64))
            targets.append(kept)
            weights.append(row_w[keep])
        if not sources:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), np.empty(0, dtype=np.float64)
        return (
            np.concatenate(sources),
            np.concatenate(targets),
            np.concatenate(weights),
        )


def _choose(
    params: WalkParams,
    view: ShardView,
    candidates: np.ndarray,
    generator: np.random.Generator,
) -> int | None:
    """Replay of uniform_chooser / make_frequency_chooser, draw-for-draw."""
    if len(candidates) == 0:
        return None
    if params.kind == "uniform":
        index = int(generator.integers(0, len(candidates)))
        return int(candidates[index])
    probabilities = adaptive_neighbor_probabilities(
        view.snapshot[candidates], params.threshold, params.decay
    )
    if probabilities.sum() <= 0:
        return None
    choice = generator.choice(len(candidates), p=probabilities)
    return int(candidates[int(choice)])


def advance_walk(walk: WalkTask, params: WalkParams, view: ShardView):
    """Advance ``walk`` on this shard until it finishes or leaves.

    Returns ``("done", nodes_or_None)`` when the walk terminates (success
    or exhausted walk budget) or ``("forward", dest_shard)`` when the
    current node belongs to another shard; the caller forwards the mutated
    task there.  Mirrors ``random_walk_nodes`` step-for-step.
    """
    generator = walk.generator
    visited = walk.visited
    visited_set = set(visited)
    if params.target_size == 1:
        return ("done", list(visited))
    while walk.steps < params.walk_length:
        if not walk.restart_drawn:
            if generator.random() < params.restart_probability:
                walk.current = walk.start
            walk.restart_drawn = True
        current = walk.current
        if not view.is_owned(current):
            # A restart can teleport to a start node this shard has never
            # seen (not even as a halo); its owner travels with the task.
            if current == walk.start:
                return ("forward", walk.start_owner)
            return ("forward", view.owner_of(current))
        candidates = view.walk_candidates(current, params.direction, params.use_projected)
        if view.availability is not None and len(candidates):
            candidates = candidates[view.availability[candidates]]
        if walk.allowed is not None and len(candidates):
            keep = np.fromiter(
                (int(candidate) in walk.allowed for candidate in candidates),
                dtype=bool,
                count=len(candidates),
            )
            candidates = candidates[keep]
        next_node = _choose(params, view, candidates, generator)
        walk.restart_drawn = False
        walk.steps += 1
        if next_node is None:
            walk.current = walk.start
            continue
        walk.current = next_node
        if next_node not in visited_set:
            visited.append(next_node)
            visited_set.add(next_node)
            if len(visited) == params.target_size:
                return ("done", list(visited))
    return ("done", None)
