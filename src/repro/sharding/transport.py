"""Pluggable shard channels: in-process calls, forked pipes, or TCP frames.

The sharded coordinator speaks one request shape — ``(kind, {shard_id:
payload})`` → ``{shard_id: response}`` — and a :class:`ShardTransport`
decides how those requests reach the shard hosts:

* :class:`LocalTransport`   — hosts live in the coordinator process; a
  request is a direct method call (the ``workers == 1`` fast path).
* :class:`ForkPipeTransport` — hosts live in forked worker processes
  connected by ``multiprocessing`` pipes (single machine, many cores).
* :class:`TcpTransport`     — hosts live behind socket servers (run with
  ``repro shard-host``), on this machine or any other, speaking a
  length-prefixed checksummed frame protocol that ships numpy payloads as
  raw buffers: **no pickle on the hot path**, ``np.frombuffer`` zero-copy
  views on receive.

Every transport is a pure channel: the bytes on the wire never influence
the draws, so all three produce bit-identical containers, frequency
counts, and θ-projections for a fixed seed — the property the sharding
differential tests enforce per transport.

Frame format (``write_checksummed`` conventions, one frame per message)::

    REPRO-FRAME-v1 sha256=<hex> size=<payload bytes>\\n
    <payload>

The payload is a self-describing tagged binary encoding (``pack_message``
/ ``unpack_message``) covering builtins, numpy arrays (dtype + shape +
raw buffer), :class:`~repro.sharding.walker.WalkParams`, RNG generators,
and — the hot path — **columnar walk batches**: all
:class:`~repro.sharding.walker.WalkTask`\\ s bound for one shard coalesce
into a handful of flat int64/uint64 arrays inside a single frame, so a
frontier-exchange round costs one frame per addressed host regardless of
how many walks it carries.  The codec has no pickle fallback at all: an
unsupported type raises :class:`~repro.errors.TransportError`, which is
what lets the serialization unit tests *prove* the no-pickle property.

Scatter/gather pipelining: :meth:`ShardTransport.scatter` enqueues frames
and returns immediately; a ``selectors``-driven pump interleaves flushing
outbound frames with draining inbound ones, so shard *i*'s outbound
frontier batch is serialized while shard *j*'s reply is still in flight.
:meth:`ShardTransport.poll` hands back whichever responses have arrived,
letting the coordinator forward walks onward without waiting for the
slowest shard of the round.
"""

from __future__ import annotations

import hashlib
import os
import selectors
import socket
import struct
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import TransportError
from repro.obs import ensure_obs
from repro.sharding.walker import WalkParams, WalkTask
from repro.utils.rng import generator_from_state, serialize_rng_state

FRAME_MAGIC = b"REPRO-FRAME-v1"
PROTOCOL_VERSION = 1
DEFAULT_TIMEOUT = 120.0
_MAX_HEADER_BYTES = 160
_RECV_CHUNK = 1 << 18

__all__ = [
    "DEFAULT_TIMEOUT",
    "FRAME_MAGIC",
    "ForkPipeTransport",
    "LocalTransport",
    "ShardHostServer",
    "ShardTransport",
    "TcpTransport",
    "TransportStats",
    "encode_frame",
    "pack_message",
    "parse_host_list",
    "resolve_transport",
    "unpack_message",
]


# --------------------------------------------------------------------------- #
# tagged binary codec (no pickle, ever)
# --------------------------------------------------------------------------- #
_T_NONE = b"\x00"
_T_FALSE = b"\x01"
_T_TRUE = b"\x02"
_T_INT = b"\x03"
_T_FLOAT = b"\x04"
_T_STR = b"\x05"
_T_BYTES = b"\x06"
_T_LIST = b"\x07"
_T_TUPLE = b"\x08"
_T_DICT = b"\x09"
_T_SET = b"\x0a"
_T_FROZENSET = b"\x0b"
_T_NDARRAY = b"\x0c"
_T_NDREF = b"\x0d"
_T_WALK_BATCH = b"\x0e"
_T_WALK_PARAMS = b"\x0f"
_T_GENERATOR = b"\x10"

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")
_MASK64 = (1 << 64) - 1


def _pack_int(value: int, out: bytearray) -> None:
    raw = value.to_bytes((value.bit_length() + 8) // 8 or 1, "little", signed=True)
    out += _T_INT
    out += _U32.pack(len(raw))
    out += raw


def _pack_ndarray(array: np.ndarray, out: bytearray, seen: dict) -> None:
    # ``seen`` pins each packed array alive (id-keyed entries hold the
    # object), so a freed temporary can never alias a later id().
    marker = id(array)
    entry = seen.get(marker)
    if entry is not None:
        # The same array object repeated inside one message (e.g. a
        # snapshot broadcast addressed to every shard a host owns) is
        # encoded once and back-referenced after that.
        out += _T_NDREF
        out += _U32.pack(entry[0])
        return
    seen[marker] = (len(seen), array)
    contiguous = np.ascontiguousarray(array)
    dtype = contiguous.dtype.str.encode("ascii")
    out += _T_NDARRAY
    out += bytes((len(dtype),))
    out += dtype
    out += bytes((contiguous.ndim,))
    for extent in contiguous.shape:
        out += _U64.pack(extent)
    out += _U64.pack(contiguous.nbytes)
    out += memoryview(contiguous).cast("B")


def _pack_walk_batch(tasks: list, out: bytearray, seen: dict) -> None:
    """Columnar encoding of a coalesced walk batch: flat arrays only."""
    count = len(tasks)
    fixed = np.empty((count, 8), dtype=np.int64)
    rng_words = np.empty((count, 6), dtype=np.uint64)
    visited_indptr = np.zeros(count + 1, dtype=np.int64)
    allowed_indptr = np.zeros(count + 1, dtype=np.int64)
    visited_parts: list[np.ndarray] = []
    allowed_parts: list[np.ndarray] = []
    for index, task in enumerate(tasks):
        generator = task.generator
        if isinstance(generator, _LazyGenerator) and generator.pristine:
            # Relay fast path: the walk was decoded and never advanced
            # here, so its wire words are still its exact state.
            rng_words[index] = generator.words
        else:
            state = generator.bit_generator.state
            words = state["state"]
            raw_state = int(words["state"])
            raw_inc = int(words["inc"])
            rng_words[index] = (
                raw_state & _MASK64,
                raw_state >> 64,
                raw_inc & _MASK64,
                raw_inc >> 64,
                int(state["has_uint32"]),
                int(state["uinteger"]),
            )
        fixed[index] = (
            task.key,
            task.start,
            task.start_owner,
            task.current,
            task.steps,
            int(task.restart_drawn),
            task.forwards,
            0 if task.allowed is None else 1,
        )
        visited = np.asarray(task.visited, dtype=np.int64)
        visited_parts.append(visited)
        visited_indptr[index + 1] = visited_indptr[index] + len(visited)
        if task.allowed is None:
            allowed_indptr[index + 1] = allowed_indptr[index]
        else:
            allowed = np.fromiter(task.allowed, dtype=np.int64, count=len(task.allowed))
            allowed_parts.append(allowed)
            allowed_indptr[index + 1] = allowed_indptr[index] + len(allowed)
    empty = np.empty(0, dtype=np.int64)
    out += _T_WALK_BATCH
    out += _U32.pack(count)
    for column in (
        fixed,
        rng_words,
        visited_indptr,
        np.concatenate(visited_parts) if visited_parts else empty,
        allowed_indptr,
        np.concatenate(allowed_parts) if allowed_parts else empty,
    ):
        _pack_ndarray(column, out, seen)


def _pack(obj, out: bytearray, seen: dict) -> None:
    if obj is None:
        out += _T_NONE
    elif obj is True:
        out += _T_TRUE
    elif obj is False:
        out += _T_FALSE
    elif isinstance(obj, (int, np.integer)):
        _pack_int(int(obj), out)
    elif isinstance(obj, (float, np.floating)):
        out += _T_FLOAT
        out += _F64.pack(float(obj))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out += _T_STR
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        raw = bytes(obj)
        out += _T_BYTES
        out += _U64.pack(len(raw))
        out += raw
    elif isinstance(obj, np.ndarray):
        _pack_ndarray(obj, out, seen)
    elif isinstance(obj, np.bool_):
        out += _T_TRUE if bool(obj) else _T_FALSE
    elif isinstance(obj, list):
        if obj and all(isinstance(item, WalkTask) for item in obj):
            _pack_walk_batch(obj, out, seen)
            return
        out += _T_LIST
        out += _U32.pack(len(obj))
        for item in obj:
            _pack(item, out, seen)
    elif isinstance(obj, tuple):
        out += _T_TUPLE
        out += _U32.pack(len(obj))
        for item in obj:
            _pack(item, out, seen)
    elif isinstance(obj, dict):
        out += _T_DICT
        out += _U32.pack(len(obj))
        for key, value in obj.items():
            _pack(key, out, seen)
            _pack(value, out, seen)
    elif isinstance(obj, (set, frozenset)):
        out += _T_FROZENSET if isinstance(obj, frozenset) else _T_SET
        out += _U32.pack(len(obj))
        for item in sorted(obj):
            _pack(item, out, seen)
    elif isinstance(obj, WalkParams):
        out += _T_WALK_PARAMS
        _pack(
            (
                obj.kind,
                obj.target_size,
                obj.walk_length,
                obj.restart_probability,
                obj.direction,
                obj.threshold,
                obj.decay,
                obj.use_projected,
            ),
            out,
            seen,
        )
    elif isinstance(obj, np.random.Generator):
        out += _T_GENERATOR
        _pack(serialize_rng_state(obj), out, seen)
    else:
        raise TransportError(
            f"cannot frame {type(obj).__name__!r} without pickle; shard "
            "frames carry builtins, numpy arrays, walk batches, and RNG "
            "states only"
        )


def pack_message(obj) -> bytes:
    """Encode ``obj`` into the transport's tagged binary payload.

    Raises:
        TransportError: for any type the codec does not model — there is
            deliberately no pickle fallback.
    """
    out = bytearray()
    _pack(obj, out, {})
    return bytes(out)


class _Cursor:
    """Offset cursor over one frame payload; arrays decode as views."""

    __slots__ = ("view", "offset", "arrays")

    def __init__(self, view: memoryview) -> None:
        self.view = view
        self.offset = 0
        self.arrays: list[np.ndarray] = []

    def take(self, count: int) -> memoryview:
        end = self.offset + count
        if end > len(self.view):
            raise TransportError(
                "frame payload is truncated: an encoded value runs past "
                "the end of the frame"
            )
        piece = self.view[self.offset : end]
        self.offset = end
        return piece


def _unpack_ndarray(cursor: _Cursor) -> np.ndarray:
    dtype_len = cursor.take(1)[0]
    dtype = np.dtype(bytes(cursor.take(dtype_len)).decode("ascii"))
    ndim = cursor.take(1)[0]
    shape = tuple(_U64.unpack(cursor.take(8))[0] for _ in range(ndim))
    nbytes = _U64.unpack(cursor.take(8))[0]
    raw = cursor.take(nbytes)
    count = nbytes // dtype.itemsize if dtype.itemsize else 0
    # Zero-copy: the array is a read-only view over the frame buffer.
    array = np.frombuffer(raw, dtype=dtype, count=count).reshape(shape)
    cursor.arrays.append(array)
    return array


def _generator_from_words(words: np.ndarray) -> np.random.Generator:
    bit_generator = np.random.PCG64(0)
    bit_generator.state = {
        "bit_generator": "PCG64",
        "state": {
            "state": int(words[0]) | (int(words[1]) << 64),
            "inc": int(words[2]) | (int(words[3]) << 64),
        },
        "has_uint32": int(words[4]),
        "uinteger": int(words[5]),
    }
    return np.random.Generator(bit_generator)


class _LazyGenerator:
    """A decoded walk generator that materializes on first draw.

    Building a real :class:`numpy.random.Generator` (PCG64 seeding plus a
    state-dict round trip) is the single most expensive part of decoding a
    walk batch — and the coordinator, which relays every cross-shard
    forward, never draws from it.  Until something touches the stream this
    wrapper just carries the six raw state words, so a relay hop costs two
    array copies instead of two Generator constructions.  Any attribute
    access (``random``, ``integers``, ``bit_generator``, ...) materializes
    the true generator and proxies to it from then on.
    """

    __slots__ = ("words", "_generator")

    def __init__(self, words: np.ndarray) -> None:
        # Copy: the words row is a view over the frame buffer, and the
        # task may outlive the frame.
        self.words = np.array(words, dtype=np.uint64)
        self._generator = None

    def materialize(self) -> np.random.Generator:
        if self._generator is None:
            self._generator = _generator_from_words(self.words)
        return self._generator

    @property
    def pristine(self) -> bool:
        """True while no draw has happened: the words are still the state."""
        return self._generator is None

    def __getattr__(self, name):
        return getattr(self.materialize(), name)


def _unpack_walk_batch(cursor: _Cursor) -> list[WalkTask]:
    count = _U32.unpack(cursor.take(4))[0]
    # Each column went through _pack_ndarray, so it carries its own
    # NDARRAY/NDREF tag — decode through the generic path.
    fixed = _unpack(cursor)
    rng_words = _unpack(cursor)
    visited_indptr = _unpack(cursor)
    visited_flat = _unpack(cursor)
    allowed_indptr = _unpack(cursor)
    allowed_flat = _unpack(cursor)
    tasks: list[WalkTask] = []
    for index in range(count):
        row = fixed[index]
        allowed = None
        if row[7]:
            window = allowed_flat[allowed_indptr[index] : allowed_indptr[index + 1]]
            allowed = frozenset(window.tolist())
        tasks.append(
            WalkTask(
                key=int(row[0]),
                start=int(row[1]),
                start_owner=int(row[2]),
                current=int(row[3]),
                steps=int(row[4]),
                restart_drawn=bool(row[5]),
                visited=visited_flat[
                    visited_indptr[index] : visited_indptr[index + 1]
                ].tolist(),
                generator=_LazyGenerator(rng_words[index]),
                allowed=allowed,
                forwards=int(row[6]),
            )
        )
    return tasks


def _unpack(cursor: _Cursor):
    tag = bytes(cursor.take(1))
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        length = _U32.unpack(cursor.take(4))[0]
        return int.from_bytes(bytes(cursor.take(length)), "little", signed=True)
    if tag == _T_FLOAT:
        return _F64.unpack(cursor.take(8))[0]
    if tag == _T_STR:
        length = _U32.unpack(cursor.take(4))[0]
        return bytes(cursor.take(length)).decode("utf-8")
    if tag == _T_BYTES:
        length = _U64.unpack(cursor.take(8))[0]
        return bytes(cursor.take(length))
    if tag == _T_NDARRAY:
        return _unpack_ndarray(cursor)
    if tag == _T_NDREF:
        index = _U32.unpack(cursor.take(4))[0]
        try:
            return cursor.arrays[index]
        except IndexError:
            raise TransportError("frame references an array it never carried") from None
    if tag in (_T_LIST, _T_TUPLE, _T_SET, _T_FROZENSET):
        count = _U32.unpack(cursor.take(4))[0]
        items = [_unpack(cursor) for _ in range(count)]
        if tag == _T_LIST:
            return items
        if tag == _T_TUPLE:
            return tuple(items)
        if tag == _T_SET:
            return set(items)
        return frozenset(items)
    if tag == _T_DICT:
        count = _U32.unpack(cursor.take(4))[0]
        return {_unpack(cursor): _unpack(cursor) for _ in range(count)}
    if tag == _T_WALK_BATCH:
        return _unpack_walk_batch(cursor)
    if tag == _T_WALK_PARAMS:
        fields = _unpack(cursor)
        return WalkParams(
            kind=fields[0],
            target_size=fields[1],
            walk_length=fields[2],
            restart_probability=fields[3],
            direction=fields[4],
            threshold=fields[5],
            decay=fields[6],
            use_projected=fields[7],
        )
    if tag == _T_GENERATOR:
        return generator_from_state(_unpack(cursor))
    raise TransportError(f"frame carries unknown type tag 0x{tag.hex()}")


def unpack_message(payload: bytes | memoryview):
    """Decode a :func:`pack_message` payload.

    Arrays come back as read-only zero-copy views over ``payload``; the
    caller must keep the buffer alive for as long as any view into it
    (each view's ``.base`` chain pins it automatically).
    """
    cursor = _Cursor(memoryview(payload))
    value = _unpack(cursor)
    if cursor.offset != len(cursor.view):
        raise TransportError(
            f"frame payload holds {len(cursor.view) - cursor.offset} trailing bytes"
        )
    return value


# --------------------------------------------------------------------------- #
# frames
# --------------------------------------------------------------------------- #
def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in the length-prefixed, checksummed frame header."""
    digest = hashlib.sha256(payload).hexdigest()
    header = FRAME_MAGIC + f" sha256={digest} size={len(payload)}\n".encode("ascii")
    return header + payload


def _parse_frame_header(header: bytes) -> tuple[str, int]:
    """Parse one header line (without the newline); returns (digest, size)."""
    if not header.startswith(FRAME_MAGIC + b" "):
        raise TransportError("stream does not carry a repro shard frame")
    try:
        fields = dict(
            part.split(b"=", 1) for part in header[len(FRAME_MAGIC) + 1 :].split(b" ")
        )
        digest = fields[b"sha256"].decode("ascii")
        size = int(fields[b"size"])
    except (KeyError, ValueError) as error:
        raise TransportError("shard frame header is malformed") from error
    if size < 0:
        raise TransportError("shard frame header is malformed")
    return digest, size


def _verify_payload(payload: bytes, digest: str) -> bytes:
    if hashlib.sha256(payload).hexdigest() != digest:
        raise TransportError(
            "shard frame failed its SHA-256 checksum; the stream is corrupt"
        )
    return payload


class _FrameParser:
    """Incremental frame parser fed by non-blocking socket reads."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._digest: str | None = None
        self._size = 0
        self.frames: deque[bytes] = deque()

    def feed(self, data: bytes) -> None:
        self._buffer += data
        while True:
            if self._digest is None:
                newline = self._buffer.find(b"\n")
                if newline < 0:
                    if len(self._buffer) > _MAX_HEADER_BYTES:
                        raise TransportError(
                            "shard frame header exceeds the size bound; the "
                            "stream is not speaking the frame protocol"
                        )
                    return
                self._digest, self._size = _parse_frame_header(
                    bytes(self._buffer[:newline])
                )
                del self._buffer[: newline + 1]
            if len(self._buffer) < self._size:
                return
            payload = bytes(self._buffer[: self._size])
            del self._buffer[: self._size]
            self.frames.append(_verify_payload(payload, self._digest))
            self._digest = None

    @property
    def mid_frame(self) -> bool:
        return bool(self._buffer) or self._digest is not None


def _read_frame_blocking(sock: socket.socket, parser: _FrameParser) -> bytes:
    """Read one frame from a blocking socket into a persistent parser.

    The parser must live as long as the connection: one ``recv`` burst can
    carry the tail of frame *N* plus the head of frame *N+1* (pipelined
    senders do this constantly), and those surplus bytes belong to the
    next call.
    """
    while not parser.frames:
        try:
            data = sock.recv(_RECV_CHUNK)
        except OSError as error:
            raise TransportError(f"shard channel read failed: {error}") from error
        if not data:
            if parser.mid_frame:
                raise TransportError(
                    "peer closed the connection mid-frame; the frame is truncated"
                )
            raise EOFError
        parser.feed(data)
    return parser.frames.popleft()


def _send_frame_blocking(sock: socket.socket, payload: bytes) -> int:
    frame = encode_frame(payload)
    try:
        sock.sendall(frame)
    except OSError as error:
        raise TransportError(f"shard channel write failed: {error}") from error
    return len(frame)


def parse_host_list(hosts) -> list[tuple[str, int]]:
    """Normalise ``host:port`` specs (string, comma list, or sequence)."""
    if hosts is None:
        return []
    if isinstance(hosts, str):
        hosts = [part for part in hosts.split(",") if part.strip()]
    parsed: list[tuple[str, int]] = []
    for spec in hosts:
        if isinstance(spec, (tuple, list)) and len(spec) == 2:
            parsed.append((str(spec[0]), int(spec[1])))
            continue
        text = str(spec).strip()
        host, separator, port = text.rpartition(":")
        if not separator or not host:
            raise TransportError(
                f"shard host {text!r} is not of the form host:port"
            )
        try:
            parsed.append((host, int(port)))
        except ValueError:
            raise TransportError(
                f"shard host {text!r} has a non-numeric port"
            ) from None
    return parsed


# --------------------------------------------------------------------------- #
# transport protocol
# --------------------------------------------------------------------------- #
@dataclass
class TransportStats:
    """Wire accounting one transport keeps while a run is live."""

    frames_sent: int = 0
    frames_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class ShardTransport:
    """Base shard channel: scatter requests, poll responses.

    ``scatter`` enqueues one request per addressed shard and returns
    without waiting; ``poll`` hands back ``(shard_id, response)`` pairs as
    they arrive.  ``request`` is the synchronous convenience built on the
    two.  Subclasses set :attr:`name`, :attr:`workers`, and
    :attr:`ships_snapshot` (whether the live-count snapshot must travel
    as an explicit broadcast rather than shared memory).
    """

    name = "abstract"
    workers = 1
    ships_snapshot = True

    def __init__(self) -> None:
        self.stats = TransportStats()
        self._outstanding = 0

    # hooks ------------------------------------------------------------- #
    def _scatter(self, kind: str, payload_by_shard: dict[int, object]) -> None:
        raise NotImplementedError

    def _poll(self, block: bool) -> list[tuple[int, object]]:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # shared API -------------------------------------------------------- #
    def scatter(self, kind: str, payload_by_shard: dict[int, object]) -> None:
        if not payload_by_shard:
            return
        self._scatter(kind, payload_by_shard)
        self._outstanding += len(payload_by_shard)

    def poll(self, block: bool = True) -> list[tuple[int, object]]:
        if self._outstanding == 0:
            return []
        responses = self._poll(block)
        self._outstanding -= len(responses)
        return responses

    @property
    def outstanding(self) -> int:
        return self._outstanding

    def request(self, kind: str, payload_by_shard: dict[int, object]) -> dict[int, object]:
        if self._outstanding:
            raise TransportError(
                "request() issued while responses are still outstanding; "
                "drain poll() first"
            )
        self.scatter(kind, payload_by_shard)
        responses: dict[int, object] = {}
        while self._outstanding:
            for shard_id, response in self.poll(block=True):
                responses[shard_id] = response
        return responses


class LocalTransport(ShardTransport):
    """Hosts in the coordinator process; requests are direct calls."""

    name = "local"
    ships_snapshot = False

    def __init__(self, shard_set) -> None:
        super().__init__()
        from repro.sharding.runtime import _ShardHost

        self.hosts = {
            shard_id: _ShardHost(shard)
            for shard_id, shard in enumerate(shard_set.shards)
        }
        self._ready: deque[tuple[int, object]] = deque()

    def _scatter(self, kind: str, payload_by_shard: dict[int, object]) -> None:
        for shard_id in sorted(payload_by_shard):
            self._ready.append(
                (shard_id, self.hosts[shard_id].handle(kind, payload_by_shard[shard_id]))
            )

    def _poll(self, block: bool) -> list[tuple[int, object]]:
        responses = list(self._ready)
        self._ready.clear()
        return responses

    def close(self) -> None:
        for host in self.hosts.values():
            host.view.snapshot = None
        self.hosts = {}
        self._ready.clear()


class ForkPipeTransport(ShardTransport):
    """Forked worker processes connected by pipes (single machine)."""

    name = "fork"

    def __init__(
        self,
        shard_set,
        workers: int,
        *,
        snapshot_name: str | None = None,
        obs=None,
    ) -> None:
        super().__init__()
        import multiprocessing

        from repro.sharding.runtime import _shard_worker_main

        self.workers = max(1, min(workers, shard_set.num_shards))
        self.obs = ensure_obs(obs)
        self.ships_snapshot = snapshot_name is None
        self._worker_of = {
            shard_id: shard_id % self.workers
            for shard_id in range(shard_set.num_shards)
        }
        self._shards_of: dict[int, list[int]] = {w: [] for w in range(self.workers)}
        for shard_id, worker in self._worker_of.items():
            self._shards_of[worker].append(shard_id)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context("spawn")
        paths = shard_set.shard_paths()
        specs_by_worker: dict[int, list] = {w: [] for w in range(self.workers)}
        for shard_id in range(shard_set.num_shards):
            if paths is not None and os.path.exists(paths[shard_id]):
                spec = paths[shard_id]
            else:
                spec = shard_set.shards[shard_id]
            specs_by_worker[self._worker_of[shard_id]].append((shard_id, spec))
        self._processes = []
        self._connections = []
        self._inflight: list[int] = [0] * self.workers
        for worker_index in range(self.workers):
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(child_end, specs_by_worker[worker_index], snapshot_name),
                daemon=True,
            )
            process.start()
            child_end.close()
            self._processes.append(process)
            self._connections.append(parent_end)

    def _scatter(self, kind: str, payload_by_shard: dict[int, object]) -> None:
        by_worker: dict[int, dict[int, object]] = {}
        for shard_id, payload in payload_by_shard.items():
            by_worker.setdefault(self._worker_of[shard_id], {})[shard_id] = payload
        for worker_index in sorted(by_worker):
            try:
                self._connections[worker_index].send((kind, by_worker[worker_index]))
            except (BrokenPipeError, OSError) as error:
                raise TransportError(
                    f"shard worker {worker_index} (shards "
                    f"{self._shards_of[worker_index]}) is gone: {error}"
                ) from error
            self._inflight[worker_index] += 1
            self.stats.frames_sent += 1

    def _poll(self, block: bool) -> list[tuple[int, object]]:
        from multiprocessing.connection import wait

        waiting = [
            self._connections[w] for w in range(self.workers) if self._inflight[w]
        ]
        if not waiting:
            return []
        ready = wait(waiting, timeout=None if block else 0)
        responses: list[tuple[int, object]] = []
        for connection in ready:
            worker_index = self._connections.index(connection)
            try:
                message = connection.recv()
            except (EOFError, OSError) as error:
                raise TransportError(
                    f"shard worker {worker_index} (shards "
                    f"{self._shards_of[worker_index]}) died mid-round "
                    f"({type(error).__name__}); its walks are lost"
                ) from error
            self._inflight[worker_index] -= 1
            self.stats.frames_received += 1
            for shard_id in sorted(message):
                responses.append((shard_id, message[shard_id]))
        return responses

    def close(self) -> None:
        for worker_index, connection in enumerate(self._connections):
            try:
                connection.send(None)
            except (BrokenPipeError, OSError) as error:
                # A dead worker is not silently ignorable: surface the
                # shard ids so run records show which channel was broken.
                self.obs.event(
                    "sharding.worker_channel_error",
                    worker=worker_index,
                    shards=self._shards_of[worker_index],
                    error=f"{type(error).__name__}: {error}",
                )
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for connection in self._connections:
            try:
                connection.close()
            except OSError:
                pass
        self._connections = []
        self._processes = []


class _HostConnection:
    """Coordinator-side non-blocking connection to one shard host."""

    __slots__ = ("sock", "address", "shards", "parser", "out", "inflight")

    def __init__(self, sock: socket.socket, address: tuple[str, int]) -> None:
        self.sock = sock
        self.address = address
        self.shards: list[int] = []
        self.parser = _FrameParser()
        self.out: deque[memoryview] = deque()
        self.inflight = 0


class TcpTransport(ShardTransport):
    """Socket-server shard hosts; frames with pipelined scatter/gather.

    ``hosts`` is a list of ``(host, port)`` addresses of running
    ``repro shard-host`` servers.  When omitted, the transport spawns
    ``workers`` local shard-host processes over loopback (shards assigned
    round-robin) — the single-machine configuration the benchmarks and CI
    smoke exercise.
    """

    name = "tcp"

    def __init__(
        self,
        shard_set,
        *,
        hosts=None,
        workers: int = 1,
        timeout: float | None = DEFAULT_TIMEOUT,
        obs=None,
    ) -> None:
        super().__init__()
        self.obs = ensure_obs(obs)
        self.timeout = timeout
        self.num_shards = shard_set.num_shards
        self._selector = selectors.DefaultSelector()
        self._processes: list = []
        self._connections: list[_HostConnection] = []
        self._host_of: dict[int, _HostConnection] = {}
        self._ready: deque[tuple[int, object]] = deque()
        addresses = parse_host_list(hosts)
        try:
            if not addresses:
                addresses = self._spawn_local_hosts(shard_set, workers)
            self._connect(addresses)
        except Exception:
            self.close()
            raise
        self.workers = len(self._connections)

    # setup ------------------------------------------------------------- #
    def _spawn_local_hosts(self, shard_set, workers: int) -> list[tuple[str, int]]:
        import multiprocessing

        workers = max(1, min(workers, shard_set.num_shards))
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context("spawn")
        paths = shard_set.shard_paths()
        specs_by_worker: dict[int, list] = {w: [] for w in range(workers)}
        for shard_id in range(shard_set.num_shards):
            if paths is not None and os.path.exists(paths[shard_id]):
                spec = paths[shard_id]
            else:
                spec = shard_set.shards[shard_id]
            specs_by_worker[shard_id % workers].append((shard_id, spec))
        addresses = []
        for worker_index in range(workers):
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=_spawned_host_main,
                args=(child_end, specs_by_worker[worker_index]),
                daemon=True,
            )
            process.start()
            child_end.close()
            self._processes.append(process)
            try:
                if not parent_end.poll(30.0):
                    raise TransportError(
                        f"spawned shard host {worker_index} never reported a port"
                    )
                port = parent_end.recv()
            except (EOFError, OSError) as error:
                raise TransportError(
                    f"spawned shard host {worker_index} died during startup"
                ) from error
            finally:
                parent_end.close()
            addresses.append(("127.0.0.1", int(port)))
        return addresses

    def _connect(self, addresses: list[tuple[str, int]]) -> None:
        hosted: dict[int, tuple[str, int]] = {}
        for address in addresses:
            try:
                sock = socket.create_connection(address, timeout=self.timeout)
            except OSError as error:
                raise TransportError(
                    f"cannot reach shard host {address[0]}:{address[1]}: {error}"
                ) from error
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection = _HostConnection(sock, address)
            # The handshake reads through the connection's persistent
            # parser so any bytes beyond the hello frame stay buffered.
            hello = unpack_message(
                _read_frame_sock_timeout(sock, self.timeout, connection.parser)
            )
            if (
                not isinstance(hello, dict)
                or hello.get("protocol") != PROTOCOL_VERSION
            ):
                raise TransportError(
                    f"shard host {address[0]}:{address[1]} spoke protocol "
                    f"{hello.get('protocol') if isinstance(hello, dict) else '?'}, "
                    f"expected {PROTOCOL_VERSION}"
                )
            if int(hello.get("num_nodes", -1)) not in (-1, 0):
                pass  # informational; coverage is validated below per shard
            connection.shards = [int(s) for s in hello.get("shards", [])]
            for shard_id in connection.shards:
                if shard_id in hosted:
                    raise TransportError(
                        f"shard {shard_id} is hosted by both "
                        f"{hosted[shard_id]} and {address}"
                    )
                hosted[shard_id] = address
                self._host_of[shard_id] = connection
            sock.setblocking(False)
            self._selector.register(sock, selectors.EVENT_READ, connection)
            self._connections.append(connection)
        missing = [s for s in range(self.num_shards) if s not in hosted]
        if missing:
            raise TransportError(
                f"no shard host serves shards {missing}; every shard must "
                "be hosted by exactly one --shard-hosts entry"
            )

    # event pump -------------------------------------------------------- #
    def _update_write_interest(self, connection: _HostConnection) -> None:
        events = selectors.EVENT_READ
        if connection.out:
            events |= selectors.EVENT_WRITE
        self._selector.modify(connection.sock, events, connection)

    def _pump(self, timeout: float | None) -> None:
        for key, mask in self._selector.select(timeout):
            connection: _HostConnection = key.data
            if mask & selectors.EVENT_WRITE:
                while connection.out:
                    chunk = connection.out[0]
                    try:
                        sent = connection.sock.send(chunk)
                    except BlockingIOError:
                        break
                    except OSError as error:
                        raise TransportError(
                            f"shard host {connection.address[0]}:"
                            f"{connection.address[1]} (shards "
                            f"{connection.shards}) dropped the connection "
                            f"mid-send: {error}"
                        ) from error
                    self.stats.bytes_sent += sent
                    if sent == len(chunk):
                        connection.out.popleft()
                    else:
                        connection.out[0] = chunk[sent:]
                        break
                if not connection.out:
                    self._update_write_interest(connection)
            if mask & selectors.EVENT_READ:
                try:
                    data = connection.sock.recv(_RECV_CHUNK)
                except BlockingIOError:
                    continue
                except OSError as error:
                    raise TransportError(
                        f"shard host {connection.address[0]}:"
                        f"{connection.address[1]} (shards {connection.shards}) "
                        f"dropped the connection: {error}"
                    ) from error
                if not data:
                    detail = (
                        "mid-frame; the reply is truncated"
                        if connection.parser.mid_frame
                        else "mid-round"
                    )
                    raise TransportError(
                        f"shard host {connection.address[0]}:"
                        f"{connection.address[1]} (shards {connection.shards}) "
                        f"closed the connection {detail}"
                    )
                self.stats.bytes_received += len(data)
                connection.parser.feed(data)
                while connection.parser.frames:
                    payload = connection.parser.frames.popleft()
                    self.stats.frames_received += 1
                    connection.inflight -= 1
                    message = unpack_message(payload)
                    for shard_id in sorted(message):
                        self._ready.append((int(shard_id), message[shard_id]))

    # transport hooks ---------------------------------------------------- #
    def _scatter(self, kind: str, payload_by_shard: dict[int, object]) -> None:
        by_connection: dict[int, dict[int, object]] = {}
        order: dict[int, _HostConnection] = {}
        for shard_id, payload in payload_by_shard.items():
            connection = self._host_of.get(shard_id)
            if connection is None:
                raise TransportError(f"no shard host serves shard {shard_id}")
            marker = id(connection)
            by_connection.setdefault(marker, {})[shard_id] = payload
            order[marker] = connection
        for marker, sub_payload in by_connection.items():
            connection = order[marker]
            # One frame per host per scatter: every task bound for this
            # host's shards travels coalesced, serialized now while other
            # hosts' replies keep flowing through the pump below.
            frame = encode_frame(pack_message((kind, sub_payload)))
            connection.out.append(memoryview(frame))
            connection.inflight += 1
            self.stats.frames_sent += 1
            self._update_write_interest(connection)
            self._pump(0)

    def _poll(self, block: bool) -> list[tuple[int, object]]:
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        while block and not self._ready:
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportError(
                        f"no shard host replied within {self.timeout:.0f}s; "
                        "treating the round as failed instead of hanging"
                    )
            self._pump(remaining)
        if not block:
            self._pump(0)
        responses = list(self._ready)
        self._ready.clear()
        return responses

    def close(self) -> None:
        for connection in self._connections:
            try:
                self._selector.unregister(connection.sock)
            except (KeyError, ValueError):
                pass
            try:
                connection.sock.close()
            except OSError as error:
                self.obs.event(
                    "sharding.worker_channel_error",
                    worker=f"{connection.address[0]}:{connection.address[1]}",
                    shards=connection.shards,
                    error=f"{type(error).__name__}: {error}",
                )
        self._connections = []
        self._host_of = {}
        self._ready.clear()
        try:
            self._selector.close()
        except OSError:
            pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        self._processes = []


def _read_frame_sock_timeout(
    sock: socket.socket, timeout: float | None, parser: _FrameParser
) -> bytes:
    previous = sock.gettimeout()
    sock.settimeout(timeout)
    try:
        return _read_frame_blocking(sock, parser)
    except EOFError:
        raise TransportError(
            "shard host closed the connection before completing the handshake"
        ) from None
    except socket.timeout:
        raise TransportError(
            "shard host did not complete the handshake in time"
        ) from None
    finally:
        sock.settimeout(previous)


# --------------------------------------------------------------------------- #
# shard host server (the remote end of TcpTransport)
# --------------------------------------------------------------------------- #
class ShardHostServer:
    """Serves one or more shards to a TCP coordinator.

    Accepts one coordinator connection at a time (the sharded engine has
    exactly one coordinator); after an orderly disconnect it loops back
    to ``accept`` so a new run can reuse a long-lived host.  Every
    connection starts with a hello frame naming the protocol version and
    the hosted shard ids, which the coordinator uses to validate that the
    host set covers every shard exactly once.
    """

    def __init__(
        self,
        shards: dict[int, object],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        obs=None,
    ) -> None:
        from repro.sharding.runtime import _ShardHost

        self.obs = ensure_obs(obs)
        self.hosts = {
            int(shard_id): _ShardHost(shard) for shard_id, shard in shards.items()
        }
        self._listener = socket.create_server((host, port), backlog=2)
        self.address = self._listener.getsockname()[:2]
        self._closed = False

    @property
    def shard_ids(self) -> list[int]:
        return sorted(self.hosts)

    def _hello_payload(self) -> bytes:
        return pack_message(
            {
                "protocol": PROTOCOL_VERSION,
                "shards": self.shard_ids,
            }
        )

    def serve_connection(self, sock: socket.socket) -> None:
        """Serve one coordinator until it disconnects."""
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        _send_frame_blocking(sock, self._hello_payload())
        parser = _FrameParser()
        while True:
            try:
                payload = _read_frame_blocking(sock, parser)
            except EOFError:
                return
            kind, by_shard = unpack_message(payload)
            response = {
                shard_id: self.hosts[shard_id].handle(kind, by_shard[shard_id])
                for shard_id in sorted(by_shard)
            }
            _send_frame_blocking(sock, pack_message(response))

    def serve_forever(self, max_connections: int | None = None) -> None:
        """Accept coordinators until closed (or ``max_connections`` served).

        Long-lived ``repro shard-host`` processes pass ``None`` and outlive
        any number of runs; auto-spawned loopback hosts pass ``1`` so the
        process exits the moment its private coordinator disconnects
        instead of blocking in ``accept`` until it is terminated.
        """
        served = 0
        while not self._closed:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed from another thread / signal path
            try:
                self.serve_connection(sock)
            except TransportError as error:
                self.obs.event(
                    "sharding.host_connection_error",
                    peer=f"{peer[0]}:{peer[1]}",
                    shards=self.shard_ids,
                    error=str(error),
                )
            finally:
                try:
                    sock.close()
                except OSError:
                    pass
            served += 1
            if max_connections is not None and served >= max_connections:
                return

    def close(self) -> None:
        self._closed = True
        for host in self.hosts.values():
            host.view.snapshot = None
        try:
            self._listener.close()
        except OSError:
            pass


def _spawned_host_main(connection, shard_specs) -> None:
    """Body of an auto-spawned loopback shard host process."""
    from repro.sharding.partition import load_shard

    shards = {}
    for shard_id, spec in shard_specs:
        shards[shard_id] = load_shard(spec) if isinstance(spec, str) else spec
    server = ShardHostServer(shards)
    try:
        connection.send(server.address[1])
        connection.close()
        server.serve_forever(max_connections=1)
    finally:
        server.close()


# --------------------------------------------------------------------------- #
# resolution
# --------------------------------------------------------------------------- #
TRANSPORTS = ("local", "fork", "tcp")


def resolve_transport(transport: str | None, workers: int) -> str:
    """Resolve the transport name; ``None`` keeps the historical default
    (in-process for one worker, forked pipes beyond that)."""
    if transport is None:
        return "local" if workers <= 1 else "fork"
    if transport not in TRANSPORTS:
        raise TransportError(
            f"unknown shard transport {transport!r}; choose from {TRANSPORTS}"
        )
    return transport
