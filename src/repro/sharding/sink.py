"""Per-shard store sink: accepted subgraphs spill to their owner shard.

The coordinator emits accepted subgraphs in global start order; a
:class:`ShardedStoreSink` routes each one to a per-shard
:class:`~repro.sampling.store.SubgraphStoreWriter` (owner = the shard that
owns the walk's start node, i.e. ``node_map[0]``) while recording the
global emission sequence number in each store's metadata.  After
``finalize``, :func:`repro.sampling.store.merge_stores` interleaves the
per-shard stores back into one store in exact emission order, so training
from the merged store is bit-identical to training from a store written by
the serial sampler — the per-shard stores are a pure layout detail.
"""

from __future__ import annotations

import os

import numpy as np

from repro.sampling.store import (
    DEFAULT_SHARD_BYTES,
    SubgraphStore,
    SubgraphStoreWriter,
    merge_stores,
)

__all__ = ["ShardedStoreSink"]


class ShardedStoreSink:
    """Routes emitted subgraphs into per-shard subgraph stores."""

    def __init__(
        self,
        base_dir: str | os.PathLike,
        assignment: np.ndarray,
        num_shards: int,
        *,
        meta: dict | None = None,
        shard_bytes: int = DEFAULT_SHARD_BYTES,
    ) -> None:
        self.base_dir = os.fspath(base_dir)
        self._assignment = np.asarray(assignment, dtype=np.int64)
        self.num_shards = int(num_shards)
        self._sequence = 0
        self._sequences: list[list[int]] = [[] for _ in range(self.num_shards)]
        self._writers: list[SubgraphStoreWriter] = []
        for shard_id in range(self.num_shards):
            path = self.store_path(shard_id)
            self._writers.append(
                SubgraphStoreWriter(
                    path,
                    shard_bytes=shard_bytes,
                    meta={**(meta or {}), "sampler_shard": shard_id},
                )
            )

    def store_path(self, shard_id: int) -> str:
        return os.path.join(self.base_dir, f"shard-{shard_id:02d}")

    def add(self, subgraph) -> None:
        start = int(subgraph.node_map[0])
        owner = int(self._assignment[start])
        self._sequences[owner].append(self._sequence)
        self._sequence += 1
        self._writers[owner].add(subgraph)

    def __len__(self) -> int:
        return self._sequence

    def finalize(self) -> list[SubgraphStore]:
        """Finalize every per-shard store; returns them in shard order."""
        stores = []
        for shard_id, writer in enumerate(self._writers):
            writer.set_meta("sequence", self._sequences[shard_id])
            stores.append(writer.finalize())
        return stores

    def finalize_merged(
        self,
        out: str | os.PathLike,
        *,
        expected_max_occurrence: int | None = None,
        num_original_nodes: int | None = None,
    ) -> SubgraphStore:
        """Finalize the per-shard stores and merge them, in emission order,
        into one store at ``out``."""
        stores = self.finalize()
        paths = [store.path for store in stores]
        for store in stores:
            store.close()
        return merge_stores(
            paths,
            out,
            expected_max_occurrence=expected_max_occurrence,
            num_original_nodes=num_original_nodes,
        )

    def abort(self) -> None:
        for writer in self._writers:
            writer.abort()
