"""Shard worker runtime: hosts shards in-process or across processes.

The coordinator (``repro.sharding.coordinator``) speaks one request shape:
``request(kind, {shard_id: payload})`` → ``{shard_id: response}``.  A
:class:`ShardRuntime` maps shards onto *hosts* — plain objects that answer
requests against one shard's :class:`~repro.sharding.walker.ShardView` —
and places hosts either in the coordinator process (``workers == 1``) or
round-robin across long-lived worker processes connected by pipes.

Each worker owns only the shards it hosts; when a shard set was loaded
from disk, workers re-map their shard files themselves, so per-process RSS
stays bounded by the hosted shards, never the whole graph.  The live-count
snapshot (the chunk-synchronous frequency snapshot of
``sampling/parallel.py``) is published once per chunk through a shared
memory segment every worker attaches to; if shared memory is unavailable
the snapshot ships inside a broadcast message instead — slower, but
bit-identical.

Determinism: requests are dispatched and collected in sorted shard order,
and every host is a pure function of (shard contents, request payload,
snapshot), so responses never depend on worker count or scheduling.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.errors import SamplingError
from repro.sampling.parallel import _attach_shared_memory, resolve_workers
from repro.sharding.partition import GraphShard, ShardSet, load_shard
from repro.sharding.walker import ShardView, WalkParams, WalkTask, advance_walk

__all__ = ["ShardRuntime"]


class _ShardHost:
    """Serves coordinator requests against one shard."""

    def __init__(self, shard: GraphShard) -> None:
        self.view = ShardView(shard)
        self.params: WalkParams | None = None
        self.seconds = 0.0
        self.walks_advanced = 0
        self.forwards_out = 0

    # ------------------------------------------------------------------ #
    def handle(self, kind: str, payload):
        began = time.perf_counter()
        try:
            return getattr(self, f"_handle_{kind}")(payload)
        finally:
            self.seconds += time.perf_counter() - began

    def _handle_stage(self, payload):
        self.params = payload["params"]
        availability = payload.get("availability")
        self.view.availability = availability
        return True

    def _handle_walks(self, payload):
        finished: list[tuple[int, list[int] | None]] = []
        forward: dict[int, list[WalkTask]] = {}
        for walk in payload:
            self.walks_advanced += 1
            status, value = advance_walk(walk, self.params, self.view)
            if status == "done":
                finished.append((walk.key, value))
            else:
                walk.forwards += 1
                self.forwards_out += 1
                forward.setdefault(value, []).append(walk)
        return {"finished": finished, "forward": forward}

    def _handle_ball_rows(self, payload):
        direction = payload["direction"]
        use_projected = payload["use_projected"]
        return {
            int(node): self.view.ball_neighbors(int(node), direction, use_projected)
            for node in payload["nodes"]
        }

    def _handle_induce(self, payload):
        use_projected = payload["use_projected"]
        return {
            request_id: self.view.induced_arcs(nodes_sorted, use_projected)
            for request_id, nodes_sorted in payload["requests"]
        }

    def _handle_in_degrees(self, payload):
        shard = self.view.shard
        return shard.owned, np.diff(shard.in_indptr)

    def _handle_project_keep(self, payload):
        """Phase C of the distributed θ-projection: build the projected
        *in* rows of owned nodes and emit out-arc fragments grouped by the
        owner shard of each kept source."""
        keep_map = payload["keep"]
        shard = self.view.shard
        in_indptr_parts = [0]
        in_local_parts: list[np.ndarray] = []
        in_weight_parts: list[np.ndarray] = []
        fragments: dict[int, list[tuple[np.ndarray, ...]]] = {}
        for pos in range(shard.num_owned):
            node = int(shard.owned[pos])
            window = slice(int(shard.in_indptr[pos]), int(shard.in_indptr[pos + 1]))
            local_sources = shard.in_local[window]
            weights = shard.in_weights[window]
            keep = keep_map.get(node)
            if keep is not None:
                local_sources = local_sources[keep]
                weights = weights[keep]
            in_indptr_parts.append(in_indptr_parts[-1] + len(local_sources))
            in_local_parts.append(local_sources)
            in_weight_parts.append(weights)
            if len(local_sources) == 0:
                continue
            global_sources = shard.global_ids[local_sources]
            if shard.num_halo:
                owners = np.where(
                    local_sources < shard.num_owned,
                    shard.shard_id,
                    shard.halo_owner[
                        np.minimum(
                            np.maximum(local_sources - shard.num_owned, 0),
                            shard.num_halo - 1,
                        )
                    ],
                )
            else:
                owners = np.full(len(local_sources), shard.shard_id, dtype=np.int64)
            positions = np.arange(len(global_sources), dtype=np.int64)
            for owner in np.unique(owners):
                mask = owners == owner
                fragments.setdefault(int(owner), []).append(
                    (
                        global_sources[mask],
                        np.full(int(mask.sum()), node, dtype=np.int64),
                        positions[mask],
                        weights[mask],
                    )
                )
        in_indptr = np.asarray(in_indptr_parts, dtype=np.int64)
        in_local = (
            np.concatenate(in_local_parts)
            if in_local_parts
            else np.empty(0, dtype=np.int64)
        )
        in_weights = (
            np.concatenate(in_weight_parts)
            if in_weight_parts
            else np.empty(0, dtype=np.float64)
        )
        self._projected_in = (in_indptr, in_local, in_weights)
        merged: dict[int, tuple[np.ndarray, ...]] = {}
        for owner, parts in fragments.items():
            merged[owner] = tuple(
                np.concatenate([part[i] for part in parts]) for i in range(4)
            )
        return merged

    def _handle_project_out(self, payload):
        """Phase D: assemble the projected *out* rows from fragments and
        install the projection on the view."""
        shard = self.view.shard
        parts = payload["fragments"]
        if parts:
            sources = np.concatenate([part[0] for part in parts])
            targets = np.concatenate([part[1] for part in parts])
            positions = np.concatenate([part[2] for part in parts])
            weights = np.concatenate([part[3] for part in parts])
        else:
            sources = targets = positions = np.empty(0, dtype=np.int64)
            weights = np.empty(0, dtype=np.float64)
        # Serial project_in_degree rebuilds the graph from the edge list
        # ordered by (target ascending, kept-position ascending); the
        # stable CSR sort then leaves each out row ordered the same way.
        order = np.lexsort((positions, targets, sources))
        sources = sources[order]
        targets = targets[order]
        weights = weights[order]
        source_positions = shard.to_local(sources)
        counts = np.bincount(source_positions, minlength=shard.num_owned)
        out_indptr = np.zeros(shard.num_owned + 1, dtype=np.int64)
        np.cumsum(counts, out=out_indptr[1:])
        out_local = shard.to_local(targets)
        in_indptr, in_local, in_weights = self._projected_in
        del self._projected_in
        self.view.projection = (
            out_indptr,
            out_local,
            weights,
            in_indptr,
            in_local,
            in_weights,
        )
        return True

    def _handle_export_projection(self, payload):
        return self.view.projection

    def _handle_drop_projection(self, payload):
        self.view.projection = None
        return True

    def _handle_snapshot(self, payload):
        self.view.snapshot = payload
        return True

    def _handle_stats(self, payload):
        return {
            "seconds": self.seconds,
            "walks_advanced": self.walks_advanced,
            "forwards_out": self.forwards_out,
            "num_owned": self.view.shard.num_owned,
            "num_halo": self.view.shard.num_halo,
        }


def _shard_worker_main(connection, shard_specs, snapshot_name) -> None:
    """Worker process loop: map shards, attach snapshot, serve requests."""
    hosts: dict[int, _ShardHost] = {}
    for shard_id, spec in shard_specs:
        shard = load_shard(spec) if isinstance(spec, str) else spec
        hosts[shard_id] = _ShardHost(shard)
    segment = None
    if snapshot_name is not None:
        segment = _attach_shared_memory(snapshot_name)
        snapshot = np.frombuffer(segment.buf, dtype=np.int64)
        for host in hosts.values():
            host.view.snapshot = snapshot
    try:
        while True:
            message = connection.recv()
            if message is None:
                break
            kind, by_shard = message
            response = {
                shard_id: hosts[shard_id].handle(kind, payload)
                for shard_id, payload in sorted(by_shard.items())
            }
            connection.send(response)
    finally:
        for host in hosts.values():
            host.view.snapshot = None
        if segment is not None:
            del snapshot
            segment.close()
        connection.close()


class ShardRuntime:
    """Places shard hosts in-process or across worker processes."""

    def __init__(
        self,
        shard_set: ShardSet,
        *,
        workers: int = 1,
        snapshot: bool = False,
    ) -> None:
        self.shard_set = shard_set
        self.num_shards = shard_set.num_shards
        self.workers = max(1, min(resolve_workers(workers), self.num_shards))
        self._hosts: dict[int, _ShardHost] | None = None
        self._processes: list = []
        self._connections: list = []
        self._worker_of: dict[int, int] = {
            shard_id: shard_id % self.workers for shard_id in range(self.num_shards)
        }
        self._segment = None
        self._snapshot_array: np.ndarray | None = None
        self._ship_snapshot = False

        if snapshot:
            self._create_snapshot_channel()
        if self.workers == 1:
            self._hosts = {
                shard_id: _ShardHost(shard)
                for shard_id, shard in enumerate(shard_set.shards)
            }
            if self._snapshot_array is not None:
                for host in self._hosts.values():
                    host.view.snapshot = self._snapshot_array
        else:
            self._start_workers(snapshot)

    # ------------------------------------------------------------------ #
    def _create_snapshot_channel(self) -> None:
        length = max(int(self.shard_set.num_nodes), 1)
        if self.workers == 1:
            # In-process hosts share the coordinator's array directly.
            self._snapshot_array = np.zeros(length, dtype=np.int64)
            return
        try:
            from multiprocessing import shared_memory

            self._segment = shared_memory.SharedMemory(
                create=True, size=8 * length
            )
            self._snapshot_array = np.frombuffer(
                self._segment.buf, dtype=np.int64
            )
            self._snapshot_array[:] = 0
        except (ImportError, OSError):
            self._segment = None
            self._snapshot_array = np.zeros(length, dtype=np.int64)
            self._ship_snapshot = True

    def _start_workers(self, snapshot: bool) -> None:
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context("spawn")
        paths = self.shard_set.shard_paths()
        specs_by_worker: dict[int, list] = {w: [] for w in range(self.workers)}
        for shard_id in range(self.num_shards):
            if paths is not None and os.path.exists(paths[shard_id]):
                spec = paths[shard_id]
            else:
                spec = self.shard_set.shards[shard_id]
            specs_by_worker[self._worker_of[shard_id]].append((shard_id, spec))
        snapshot_name = (
            self._segment.name if (snapshot and self._segment is not None) else None
        )
        for worker_index in range(self.workers):
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=_shard_worker_main,
                args=(child_end, specs_by_worker[worker_index], snapshot_name),
                daemon=True,
            )
            process.start()
            child_end.close()
            self._processes.append(process)
            self._connections.append(parent_end)

    # ------------------------------------------------------------------ #
    def write_snapshot(self, counts: np.ndarray) -> None:
        """Publish the chunk's live-count snapshot to every host."""
        if self._snapshot_array is None:
            raise SamplingError("runtime was created without a snapshot channel")
        self._snapshot_array[: len(counts)] = counts
        if self._hosts is not None:
            return
        if self._ship_snapshot:
            self.broadcast("snapshot", self._snapshot_array.copy())

    def request(self, kind: str, payload_by_shard: dict[int, object]) -> dict[int, object]:
        """Send one request per addressed shard; gather responses."""
        if not payload_by_shard:
            return {}
        if self._hosts is not None:
            return {
                shard_id: self._hosts[shard_id].handle(kind, payload)
                for shard_id, payload in sorted(payload_by_shard.items())
            }
        by_worker: dict[int, dict[int, object]] = {}
        for shard_id, payload in payload_by_shard.items():
            by_worker.setdefault(self._worker_of[shard_id], {})[shard_id] = payload
        for worker_index in sorted(by_worker):
            self._connections[worker_index].send((kind, by_worker[worker_index]))
        responses: dict[int, object] = {}
        for worker_index in sorted(by_worker):
            responses.update(self._connections[worker_index].recv())
        return responses

    def broadcast(self, kind: str, payload) -> dict[int, object]:
        return self.request(
            kind, {shard_id: payload for shard_id in range(self.num_shards)}
        )

    def stats(self) -> dict[int, dict]:
        return self.broadcast("stats", None)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        for connection in self._connections:
            try:
                connection.send(None)
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        for connection in self._connections:
            try:
                connection.close()
            except OSError:
                pass
        self._connections = []
        self._processes = []
        if self._hosts is not None:
            for host in self._hosts.values():
                host.view.snapshot = None
            self._hosts = None
        if self._segment is not None:
            self._snapshot_array = None
            try:
                self._segment.close()
                self._segment.unlink()
            except (FileNotFoundError, OSError):
                pass
            self._segment = None

    def __enter__(self) -> "ShardRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
