"""Shard worker runtime: hosts shards behind a pluggable transport.

The coordinator (``repro.sharding.coordinator``) speaks one request shape:
``request(kind, {shard_id: payload})`` → ``{shard_id: response}``.  A
:class:`ShardRuntime` maps shards onto *hosts* — plain objects that answer
requests against one shard's :class:`~repro.sharding.walker.ShardView` —
and places hosts behind one of three transports
(:mod:`repro.sharding.transport`):

* ``local`` — hosts in the coordinator process, direct calls;
* ``fork``  — hosts round-robin across forked worker processes connected
  by pipes (the historical multi-worker path);
* ``tcp``   — hosts behind ``repro shard-host`` socket servers speaking
  the checksummed zero-copy frame protocol, on this machine or others.

Each worker owns only the shards it hosts; when a shard set was loaded
from disk, workers re-map their shard files themselves, so per-process RSS
stays bounded by the hosted shards, never the whole graph.  The live-count
snapshot (the chunk-synchronous frequency snapshot of
``sampling/parallel.py``) is published once per chunk through a shared
memory segment every forked worker attaches to; when shared memory is
unavailable — or the hosts are behind TCP — the snapshot ships inside a
broadcast frame instead: slower, but bit-identical.

Determinism: requests are dispatched and collected in sorted shard order,
and every host is a pure function of (shard contents, request payload,
snapshot), so responses never depend on worker count, transport, or
scheduling.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import SamplingError
from repro.obs import ensure_obs
from repro.sampling.parallel import _attach_shared_memory, resolve_workers
from repro.sharding.partition import GraphShard, ShardSet, load_shard
from repro.sharding.transport import (
    ForkPipeTransport,
    LocalTransport,
    TcpTransport,
    resolve_transport,
)
from repro.sharding.walker import ShardView, WalkParams, WalkTask, advance_walk

__all__ = ["ShardRuntime"]


class _ShardHost:
    """Serves coordinator requests against one shard."""

    def __init__(self, shard: GraphShard) -> None:
        self.view = ShardView(shard)
        self.params: WalkParams | None = None
        self.seconds = 0.0
        self.walks_advanced = 0
        self.forwards_out = 0

    # ------------------------------------------------------------------ #
    def handle(self, kind: str, payload):
        began = time.perf_counter()
        try:
            return getattr(self, f"_handle_{kind}")(payload)
        finally:
            self.seconds += time.perf_counter() - began

    def _handle_stage(self, payload):
        self.params = payload["params"]
        availability = payload.get("availability")
        self.view.availability = availability
        return True

    def _handle_walks(self, payload):
        finished: list[tuple[int, list[int] | None]] = []
        forward: dict[int, list[WalkTask]] = {}
        for walk in payload:
            self.walks_advanced += 1
            status, value = advance_walk(walk, self.params, self.view)
            if status == "done":
                finished.append((walk.key, value))
            else:
                walk.forwards += 1
                self.forwards_out += 1
                forward.setdefault(value, []).append(walk)
        return {"finished": finished, "forward": forward}

    def _handle_ball_rows(self, payload):
        direction = payload["direction"]
        use_projected = payload["use_projected"]
        return {
            int(node): self.view.ball_neighbors(int(node), direction, use_projected)
            for node in payload["nodes"]
        }

    def _handle_induce(self, payload):
        use_projected = payload["use_projected"]
        return {
            request_id: self.view.induced_arcs(nodes_sorted, use_projected)
            for request_id, nodes_sorted in payload["requests"]
        }

    def _handle_in_degrees(self, payload):
        shard = self.view.shard
        return shard.owned, np.diff(shard.in_indptr)

    def _handle_project_keep(self, payload):
        """Phase C of the distributed θ-projection: build the projected
        *in* rows of owned nodes and emit out-arc fragments grouped by the
        owner shard of each kept source."""
        keep_map = payload["keep"]
        shard = self.view.shard
        in_indptr_parts = [0]
        in_local_parts: list[np.ndarray] = []
        in_weight_parts: list[np.ndarray] = []
        fragments: dict[int, list[tuple[np.ndarray, ...]]] = {}
        for pos in range(shard.num_owned):
            node = int(shard.owned[pos])
            window = slice(int(shard.in_indptr[pos]), int(shard.in_indptr[pos + 1]))
            local_sources = shard.in_local[window]
            weights = shard.in_weights[window]
            keep = keep_map.get(node)
            if keep is not None:
                local_sources = local_sources[keep]
                weights = weights[keep]
            in_indptr_parts.append(in_indptr_parts[-1] + len(local_sources))
            in_local_parts.append(local_sources)
            in_weight_parts.append(weights)
            if len(local_sources) == 0:
                continue
            global_sources = shard.global_ids[local_sources]
            if shard.num_halo:
                owners = np.where(
                    local_sources < shard.num_owned,
                    shard.shard_id,
                    shard.halo_owner[
                        np.minimum(
                            np.maximum(local_sources - shard.num_owned, 0),
                            shard.num_halo - 1,
                        )
                    ],
                )
            else:
                owners = np.full(len(local_sources), shard.shard_id, dtype=np.int64)
            positions = np.arange(len(global_sources), dtype=np.int64)
            for owner in np.unique(owners):
                mask = owners == owner
                fragments.setdefault(int(owner), []).append(
                    (
                        global_sources[mask],
                        np.full(int(mask.sum()), node, dtype=np.int64),
                        positions[mask],
                        weights[mask],
                    )
                )
        in_indptr = np.asarray(in_indptr_parts, dtype=np.int64)
        in_local = (
            np.concatenate(in_local_parts)
            if in_local_parts
            else np.empty(0, dtype=np.int64)
        )
        in_weights = (
            np.concatenate(in_weight_parts)
            if in_weight_parts
            else np.empty(0, dtype=np.float64)
        )
        self._projected_in = (in_indptr, in_local, in_weights)
        merged: dict[int, tuple[np.ndarray, ...]] = {}
        for owner, parts in fragments.items():
            merged[owner] = tuple(
                np.concatenate([part[i] for part in parts]) for i in range(4)
            )
        return merged

    def _handle_project_out(self, payload):
        """Phase D: assemble the projected *out* rows from fragments and
        install the projection on the view."""
        shard = self.view.shard
        parts = payload["fragments"]
        if parts:
            sources = np.concatenate([part[0] for part in parts])
            targets = np.concatenate([part[1] for part in parts])
            positions = np.concatenate([part[2] for part in parts])
            weights = np.concatenate([part[3] for part in parts])
        else:
            sources = targets = positions = np.empty(0, dtype=np.int64)
            weights = np.empty(0, dtype=np.float64)
        # Serial project_in_degree rebuilds the graph from the edge list
        # ordered by (target ascending, kept-position ascending); the
        # stable CSR sort then leaves each out row ordered the same way.
        order = np.lexsort((positions, targets, sources))
        sources = sources[order]
        targets = targets[order]
        weights = weights[order]
        source_positions = shard.to_local(sources)
        counts = np.bincount(source_positions, minlength=shard.num_owned)
        out_indptr = np.zeros(shard.num_owned + 1, dtype=np.int64)
        np.cumsum(counts, out=out_indptr[1:])
        out_local = shard.to_local(targets)
        in_indptr, in_local, in_weights = self._projected_in
        del self._projected_in
        self.view.projection = (
            out_indptr,
            out_local,
            weights,
            in_indptr,
            in_local,
            in_weights,
        )
        return True

    def _handle_export_projection(self, payload):
        return self.view.projection

    def _handle_drop_projection(self, payload):
        self.view.projection = None
        return True

    def _handle_snapshot(self, payload):
        # Own a writable copy: later chunks arrive as sparse deltas
        # applied in place (frame payloads decode as read-only views).
        self.view.snapshot = np.array(payload, dtype=np.int64)
        return True

    def _handle_snapshot_delta(self, payload):
        indices, values = payload
        self.view.snapshot[indices] = values
        return True

    def _handle_stats(self, payload):
        return {
            "seconds": self.seconds,
            "walks_advanced": self.walks_advanced,
            "forwards_out": self.forwards_out,
            "num_owned": self.view.shard.num_owned,
            "num_halo": self.view.shard.num_halo,
        }


def _shard_worker_main(connection, shard_specs, snapshot_name) -> None:
    """Worker process loop: map shards, attach snapshot, serve requests."""
    hosts: dict[int, _ShardHost] = {}
    for shard_id, spec in shard_specs:
        shard = load_shard(spec) if isinstance(spec, str) else spec
        hosts[shard_id] = _ShardHost(shard)
    segment = None
    if snapshot_name is not None:
        segment = _attach_shared_memory(snapshot_name)
        snapshot = np.frombuffer(segment.buf, dtype=np.int64)
        for host in hosts.values():
            host.view.snapshot = snapshot
    try:
        while True:
            message = connection.recv()
            if message is None:
                break
            kind, by_shard = message
            response = {
                shard_id: hosts[shard_id].handle(kind, payload)
                for shard_id, payload in sorted(by_shard.items())
            }
            connection.send(response)
    finally:
        for host in hosts.values():
            host.view.snapshot = None
        if segment is not None:
            del snapshot
            segment.close()
        connection.close()


class ShardRuntime:
    """Places shard hosts behind the configured transport."""

    def __init__(
        self,
        shard_set: ShardSet,
        *,
        workers: int = 1,
        snapshot: bool = False,
        transport: str | None = None,
        shard_hosts=None,
        timeout: float | None = None,
        obs=None,
    ) -> None:
        self.shard_set = shard_set
        self.num_shards = shard_set.num_shards
        self.workers = max(1, min(resolve_workers(workers), self.num_shards))
        self.obs = ensure_obs(obs)
        self.transport_name = resolve_transport(transport, self.workers)
        self._segment = None
        self._snapshot_array: np.ndarray | None = None
        self._snapshot_shipped: np.ndarray | None = None
        self.transport = None
        try:
            if self.transport_name == "local":
                self.transport = LocalTransport(shard_set)
                if snapshot:
                    # In-process hosts share the coordinator's array.
                    self._snapshot_array = np.zeros(
                        max(int(shard_set.num_nodes), 1), dtype=np.int64
                    )
                    for host in self.transport.hosts.values():
                        host.view.snapshot = self._snapshot_array
            elif self.transport_name == "fork":
                snapshot_name = None
                if snapshot:
                    snapshot_name = self._create_snapshot_segment()
                self.transport = ForkPipeTransport(
                    shard_set,
                    self.workers,
                    snapshot_name=snapshot_name,
                    obs=self.obs,
                )
            else:
                if snapshot:
                    self._snapshot_array = np.zeros(
                        max(int(shard_set.num_nodes), 1), dtype=np.int64
                    )
                kwargs = {} if timeout is None else {"timeout": timeout}
                self.transport = TcpTransport(
                    shard_set,
                    hosts=shard_hosts,
                    workers=self.workers,
                    obs=self.obs,
                    **kwargs,
                )
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    def _create_snapshot_segment(self) -> str | None:
        """Back the snapshot with shared memory; fall back to shipping."""
        length = max(int(self.shard_set.num_nodes), 1)
        try:
            from multiprocessing import shared_memory

            self._segment = shared_memory.SharedMemory(create=True, size=8 * length)
            self._snapshot_array = np.frombuffer(self._segment.buf, dtype=np.int64)
            self._snapshot_array[:] = 0
            return self._segment.name
        except (ImportError, OSError):
            self._segment = None
            self._snapshot_array = np.zeros(length, dtype=np.int64)
            return None

    # ------------------------------------------------------------------ #
    def write_snapshot(self, counts: np.ndarray) -> None:
        """Publish the chunk's live-count snapshot to every host.

        Shared-memory transports see the in-place write immediately.  A
        shipping transport gets the full array once, then per-chunk sparse
        deltas — between chunks only the nodes of the chunk's accepted
        subgraphs change, so the delta is tiny next to the snapshot.
        """
        if self._snapshot_array is None:
            raise SamplingError("runtime was created without a snapshot channel")
        if not self.transport.ships_snapshot:
            self._snapshot_array[: len(counts)] = counts
            return
        if self._snapshot_shipped is None:
            self._snapshot_array[: len(counts)] = counts
            self.broadcast("snapshot", self._snapshot_array.copy())
            self._snapshot_shipped = self._snapshot_array.copy()
            return
        previous = self._snapshot_shipped[: len(counts)]
        changed = np.flatnonzero(previous != counts)
        self._snapshot_array[: len(counts)] = counts
        if changed.size:
            values = np.asarray(counts)[changed]
            self.broadcast("snapshot_delta", (changed, values))
            previous[changed] = values

    def request(self, kind: str, payload_by_shard: dict[int, object]) -> dict[int, object]:
        """Send one request per addressed shard; gather responses."""
        if not payload_by_shard:
            return {}
        return self.transport.request(kind, payload_by_shard)

    def scatter(self, kind: str, payload_by_shard: dict[int, object]) -> None:
        """Enqueue requests without waiting; drain them with :meth:`poll`."""
        self.transport.scatter(kind, payload_by_shard)

    def poll(self, block: bool = True) -> list[tuple[int, object]]:
        """Collect ``(shard_id, response)`` pairs as they arrive."""
        return self.transport.poll(block=block)

    @property
    def outstanding(self) -> int:
        return self.transport.outstanding

    def broadcast(self, kind: str, payload) -> dict[int, object]:
        return self.request(
            kind, {shard_id: payload for shard_id in range(self.num_shards)}
        )

    def stats(self) -> dict[int, dict]:
        return self.broadcast("stats", None)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        try:
            if self.transport is not None:
                self.transport.close()
                self.transport = None
        finally:
            # Shared memory must unlink on every path — a failed transport
            # teardown must not leak the segment.
            self._snapshot_array = None
            if self._segment is not None:
                try:
                    self._segment.close()
                    self._segment.unlink()
                except (FileNotFoundError, OSError):
                    pass
                self._segment = None

    def __enter__(self) -> "ShardRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
