"""Gradient clipping (Algorithm 2, line 6)."""

from __future__ import annotations

import numpy as np

from repro.errors import PrivacyError


def clip_to_norm(vector: np.ndarray, clip_bound: float) -> np.ndarray:
    """Scale ``vector`` so its l2 norm is at most ``clip_bound``.

    Implements ``g / max(1, ||g||_2 / C)`` — a no-op for small gradients,
    a rescale (not a truncation) for large ones.
    """
    if clip_bound <= 0:
        raise PrivacyError(f"clip_bound must be positive, got {clip_bound}")
    array = np.asarray(vector, dtype=np.float64)
    norm = float(np.linalg.norm(array))
    if norm <= clip_bound:
        return array.copy()
    return array * (clip_bound / norm)


def clipped_norm_bound(vectors: list[np.ndarray], clip_bound: float) -> float:
    """Empirical check: max l2 norm after clipping every vector.

    Used by tests and failure-injection tooling to assert that no clipped
    per-subgraph gradient ever exceeds ``clip_bound`` (within float error).
    """
    if not vectors:
        return 0.0
    return max(float(np.linalg.norm(clip_to_norm(v, clip_bound))) for v in vectors)
