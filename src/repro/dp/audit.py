"""Empirical privacy auditing via node membership inference.

The formal guarantee bounds how much any adversary can learn; this module
measures what a concrete adversary *does* learn, the standard sanity check
for DP implementations.  The attack follows the shadow-model recipe
specialised to node-level graph DP:

1. pick a target node ``v`` (by default the highest-degree node — the most
   exposed individual);
2. train many models on ``G`` (world 1) and on ``G − v`` (world 0) with
   independent randomness;
3. score each trained model with a distinguishing statistic (the mean seed
   probability the model assigns to ``v``'s neighbourhood);
4. report the best threshold attack's advantage.  For an
   (ε, δ)-DP trainer the advantage of *any* attack is at most
   ``(e^ε − 1 + 2δ) / (e^ε + 1)``; a measured advantage above that bound
   would falsify the implementation.

The audit is a statistical lower bound on leakage: passing it does not
prove the guarantee, but failing it disproves it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import PrivacyError
from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng


@dataclass
class AuditResult:
    """Outcome of a membership-inference audit.

    Attributes:
        target_node: the audited node id.
        attack_advantage: best threshold attack's ``|TPR − FPR|`` ∈ [0, 1];
            0 means the worlds are indistinguishable.
        dp_advantage_bound: the theoretical cap implied by (ε, δ).
        sampling_error: 95%-confidence slack of the advantage estimate
            (DKW bound over both empirical CDFs) — with few shadow models
            the raw advantage is dominated by sampling noise.
        world1_scores / world0_scores: the raw distinguishing statistics.
    """

    target_node: int
    attack_advantage: float
    dp_advantage_bound: float
    sampling_error: float
    world1_scores: np.ndarray
    world0_scores: np.ndarray

    @property
    def respects_bound(self) -> bool:
        """Whether the advantage, minus sampling slack, stays under the cap.

        Only an advantage that exceeds the bound by more than the
        finite-sample error is evidence against the implementation.
        """
        return (
            self.attack_advantage - self.sampling_error
            <= self.dp_advantage_bound + 1e-9
        )


def dp_advantage_bound(epsilon: float, delta: float) -> float:
    """Max membership advantage of any adversary under (ε, δ)-DP.

    ``(e^ε − 1 + 2δ) / (e^ε + 1)``, capped at 1.
    """
    if epsilon < 0 or not 0 <= delta < 1:
        raise PrivacyError("epsilon must be >= 0 and delta in [0, 1)")
    return float(min((np.exp(epsilon) - 1.0 + 2.0 * delta) / (np.exp(epsilon) + 1.0), 1.0))


def threshold_attack_advantage(
    world1_scores: np.ndarray, world0_scores: np.ndarray
) -> float:
    """Best single-threshold distinguisher's ``|TPR − FPR|``.

    Sweeps every candidate threshold over the pooled scores (both
    directions) and returns the largest advantage.
    """
    ones = np.asarray(world1_scores, dtype=np.float64)
    zeros = np.asarray(world0_scores, dtype=np.float64)
    if ones.size == 0 or zeros.size == 0:
        raise PrivacyError("both worlds need at least one score")
    best = 0.0
    for threshold in np.concatenate([ones, zeros]):
        tpr = float((ones >= threshold).mean())
        fpr = float((zeros >= threshold).mean())
        best = max(best, abs(tpr - fpr))
    return best


def audit_node_membership(
    train_fn: Callable[[Graph, int], "object"],
    graph: Graph,
    *,
    epsilon: float,
    delta: float,
    target_node: int | None = None,
    repeats: int = 8,
    rng: int | np.random.Generator | None = None,
) -> AuditResult:
    """Run the shadow-model membership audit.

    Args:
        train_fn: ``(graph, seed) -> pipeline`` — trains a fresh pipeline
            (must expose ``score_nodes(graph)``) on the given graph with the
            given seed.
        graph: the full graph (world 1).
        epsilon / delta: the guarantee the trainer claims, for the bound.
        target_node: node to audit; defaults to the max-out-degree node.
        repeats: shadow models per world.
        rng: seed or generator for the seed stream.

    Returns:
        An :class:`AuditResult`; check ``respects_bound``.
    """
    if repeats < 2:
        raise PrivacyError(f"repeats must be >= 2, got {repeats}")
    generator = ensure_rng(rng)

    if target_node is None:
        target_node = int(np.argmax(graph.out_degrees()))
    if not 0 <= target_node < graph.num_nodes:
        raise PrivacyError(f"target_node {target_node} out of range")

    # World 0: the target's data is absent.
    without_target, node_map = graph.remove_nodes([target_node])
    # The statistic is evaluated on nodes present in both worlds: the
    # target's neighbourhood, which is what its removal perturbs most.
    neighborhood = set(int(n) for n in graph.out_neighbors(target_node)) | set(
        int(n) for n in graph.in_neighbors(target_node)
    )
    neighborhood.discard(target_node)
    if not neighborhood:
        raise PrivacyError("target node is isolated; pick a connected node")
    shared = sorted(neighborhood)
    # Positions of the shared nodes inside world 0's relabelled graph.
    position = {int(original): local for local, original in enumerate(node_map)}
    shared_world0 = [position[node] for node in shared]

    def statistic(pipeline) -> float:
        # Both worlds' models are evaluated on the SAME canonical input —
        # world 0's graph.  DP constrains the distribution of trained
        # models, not of evaluation inputs; scoring world 1's models on a
        # graph that still contains the target would leak its presence
        # through the features, not through training.
        scores = pipeline.score_nodes(without_target)
        return float(np.mean(scores[shared_world0]))

    seeds = generator.integers(0, 2**31 - 1, size=2 * repeats)
    world1 = np.array(
        [statistic(train_fn(graph, int(seed))) for seed in seeds[:repeats]]
    )
    world0 = np.array(
        [statistic(train_fn(without_target, int(seed))) for seed in seeds[repeats:]]
    )

    # DKW 95% band on each empirical CDF; their sum bounds the advantage
    # estimation error.
    dkw = np.sqrt(np.log(2.0 / 0.05) / (2.0 * repeats))
    return AuditResult(
        target_node=target_node,
        attack_advantage=threshold_attack_advantage(world1, world0),
        dp_advantage_bound=dp_advantage_bound(epsilon, delta),
        sampling_error=float(2.0 * dkw),
        world1_scores=world1,
        world0_scores=world0,
    )
