"""Rényi differential privacy primitives.

Implements the paper's Definitions 3–5 and Theorem 1:

* Rényi divergence of shifted Gaussians (Lemma 5) —
  ``D_α(N(μ, σ²) ‖ N(0, σ²)) = α μ² / (2 σ²)``;
* sequential composition — RDP parameters add across iterations;
* conversion to (ε, δ)-DP (Theorem 1, the Canonne–Kamath–Steinke rule) —
  ``ε = γ + log((α − 1)/α) − (log δ + log α)/(α − 1)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PrivacyError

#: Default order grid for optimising the RDP → DP conversion.  Matches the
#: common practice (Opacus/TF-Privacy) of a dense low range plus a sparse
#: high range.
DEFAULT_ALPHAS: tuple[float, ...] = tuple(
    [1.0 + x / 10.0 for x in range(1, 100)] + list(range(11, 64)) + [128.0, 256.0, 512.0]
)


def gaussian_rdp(alpha: float, sigma: float, *, shift: float = 1.0) -> float:
    """RDP of the Gaussian mechanism at order ``alpha`` (Lemma 5).

    For a query with sensitivity ``shift`` and noise std ``sigma``:
    ``γ(α) = α · shift² / (2 σ²)``.
    """
    if alpha <= 1:
        raise PrivacyError(f"alpha must be > 1, got {alpha}")
    if sigma <= 0:
        raise PrivacyError(f"sigma must be positive, got {sigma}")
    return alpha * shift**2 / (2.0 * sigma**2)


def compose_rdp(gammas: list[float]) -> float:
    """Sequential composition (Definition 5): RDP parameters add."""
    if any(g < 0 for g in gammas):
        raise PrivacyError("RDP parameters must be non-negative")
    return float(sum(gammas))


def rdp_to_dp(alpha: float, gamma: float, delta: float) -> float:
    """Theorem 1: convert an ``(α, γ)``-RDP guarantee to ``(ε, δ)``-DP."""
    if alpha <= 1:
        raise PrivacyError(f"alpha must be > 1, got {alpha}")
    if not 0 < delta < 1:
        raise PrivacyError(f"delta must be in (0, 1), got {delta}")
    if gamma < 0:
        raise PrivacyError(f"gamma must be non-negative, got {gamma}")
    return (
        gamma
        + np.log((alpha - 1.0) / alpha)
        - (np.log(delta) + np.log(alpha)) / (alpha - 1.0)
    )


def best_epsilon(
    rdp_curve, delta: float, alphas: tuple[float, ...] = DEFAULT_ALPHAS
) -> tuple[float, float]:
    """Minimise the converted ε over an order grid.

    Args:
        rdp_curve: callable ``alpha -> gamma`` giving the mechanism's RDP.
        delta: target δ.
        alphas: candidate orders.

    Returns:
        ``(epsilon, best_alpha)``.
    """
    best = (np.inf, alphas[0])
    for alpha in alphas:
        gamma = rdp_curve(alpha)
        if not np.isfinite(gamma):
            continue
        epsilon = rdp_to_dp(alpha, gamma, delta)
        if epsilon < best[0]:
            best = (float(epsilon), float(alpha))
    if not np.isfinite(best[0]):
        raise PrivacyError("could not find a finite epsilon on the alpha grid")
    return best
