"""Differential-privacy substrate: mechanisms, sensitivity, RDP accounting."""

from repro.dp.mechanisms import (
    gaussian_noise,
    laplace_noise,
    symmetric_multivariate_laplace_noise,
)
from repro.dp.clipping import clip_to_norm, clipped_norm_bound
from repro.dp.sensitivity import (
    edge_level_sensitivity,
    max_occurrences_dual_stage,
    max_occurrences_naive,
    node_level_sensitivity,
)
from repro.dp.rdp import gaussian_rdp, rdp_to_dp, DEFAULT_ALPHAS
from repro.dp.accountant import (
    PrivacyAccountant,
    calibrate_sigma,
    poisson_subsampled_gaussian_rdp,
    privim_step_rdp,
)
from repro.dp.input_perturbation import (
    edge_flip_rate,
    randomized_response_graph,
    randomized_response_keep_probability,
)
from repro.dp.audit import (
    AuditResult,
    audit_node_membership,
    dp_advantage_bound,
    threshold_attack_advantage,
)

__all__ = [
    "gaussian_noise",
    "laplace_noise",
    "symmetric_multivariate_laplace_noise",
    "clip_to_norm",
    "clipped_norm_bound",
    "max_occurrences_naive",
    "max_occurrences_dual_stage",
    "node_level_sensitivity",
    "edge_level_sensitivity",
    "gaussian_rdp",
    "rdp_to_dp",
    "DEFAULT_ALPHAS",
    "privim_step_rdp",
    "poisson_subsampled_gaussian_rdp",
    "PrivacyAccountant",
    "calibrate_sigma",
    "randomized_response_graph",
    "randomized_response_keep_probability",
    "edge_flip_rate",
    "AuditResult",
    "audit_node_membership",
    "dp_advantage_bound",
    "threshold_attack_advantage",
]
