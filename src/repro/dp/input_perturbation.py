"""Input perturbation: edge-local randomized response on the graph.

The related-work taxonomy (Section VI-C) lists three DP-GNN noise injection
points: input, aggregation, and gradients.  PrivIM is a gradient method;
this module implements the *input* alternative — perturb the adjacency
structure once with randomized response under edge-local DP, then train on
the sanitised graph with no further noise — both as a comparison point and
as the building block for the paper's future-work LDP direction.

Randomized response on each potential edge (keep a real edge / fabricate a
non-edge with calibrated probabilities) satisfies ε-edge-LDP with

``p_keep = e^ε / (1 + e^ε)``.

Fabrication over all Θ(|V|²) non-edges would drown any sparse graph, so —
as is standard for degree-preserving variants — fabricated edges are
sampled to keep the expected edge count unchanged, with the honest-keep
probability still governed by ε.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PrivacyError
from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng


def randomized_response_keep_probability(epsilon: float) -> float:
    """Honest-report probability ``e^ε / (1 + e^ε)`` of binary RR."""
    if epsilon <= 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")
    return float(np.exp(epsilon) / (1.0 + np.exp(epsilon)))


def randomized_response_graph(
    graph: Graph,
    epsilon: float,
    rng: int | np.random.Generator | None = None,
) -> Graph:
    """Sanitise ``graph`` with edge-level randomized response.

    Each existing arc survives with probability ``p = e^ε/(1+e^ε)``; the
    dropped mass is replaced by uniformly fabricated arcs so the expected
    arc count is preserved (a sparsity-preserving RR variant).  Smaller ε
    means noisier structure: at ε → 0 half the arcs are random.

    Args:
        graph: the private graph.
        epsilon: edge-LDP budget per edge.
        rng: seed or generator.

    Returns:
        A sanitised :class:`Graph` with unit weights.
    """
    generator = ensure_rng(rng)
    keep_probability = randomized_response_keep_probability(epsilon)

    sources, targets, _ = graph.edge_arrays()
    keep_mask = generator.random(len(sources)) < keep_probability
    kept = set(zip(sources[keep_mask].tolist(), targets[keep_mask].tolist()))

    # Fabricate replacements for dropped arcs.
    num_fabricated = int(len(sources) - keep_mask.sum())
    fabricated: set[tuple[int, int]] = set()
    attempts = 0
    while len(fabricated) < num_fabricated and attempts < 20 * max(num_fabricated, 1):
        attempts += 1
        u = int(generator.integers(0, graph.num_nodes))
        v = int(generator.integers(0, graph.num_nodes))
        if u != v and (u, v) not in kept and (u, v) not in fabricated:
            fabricated.add((u, v))

    edges = sorted(kept | fabricated)
    if not edges:
        return Graph(graph.num_nodes, np.empty((0, 2), dtype=np.int64))
    sanitised = Graph(graph.num_nodes, np.asarray(edges, dtype=np.int64))
    sanitised.is_directed = graph.is_directed
    return sanitised


def edge_flip_rate(original: Graph, sanitised: Graph) -> float:
    """Fraction of the original arcs missing from the sanitised graph.

    A diagnostic for how much structure randomized response destroyed;
    useful in tests and when comparing against gradient perturbation.
    """
    original_arcs = {(u, v) for u, v, _ in original.edges()}
    if not original_arcs:
        return 0.0
    sanitised_arcs = {(u, v) for u, v, _ in sanitised.edges()}
    missing = len(original_arcs - sanitised_arcs)
    return missing / len(original_arcs)
