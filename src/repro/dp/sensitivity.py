"""Node-level sensitivity bounds (Lemmas 1 and 2).

The DP noise scale is ``sigma * Δ_g`` where ``Δ_g = C · N_g`` (Lemma 2):
``C`` bounds each subgraph's clipped gradient and ``N_g`` bounds how many
subgraphs one node can appear in.  The two sampling schemes differ exactly
in ``N_g``:

* naive RWR on the θ-bounded graph: ``N_g = Σ_{i=0..r} θ^i`` (Lemma 1),
  exponential in the GNN depth ``r``;
* dual-stage frequency sampling: ``N_g* = M`` — the hard occurrence cap —
  independent of ``r``.
"""

from __future__ import annotations

from repro.errors import PrivacyError


def max_occurrences_naive(theta: int, num_layers: int) -> int:
    """Lemma 1: max occurrences of any node under Algorithm 1 sampling.

    ``N_g = Σ_{i=0}^{r} θ^i = (θ^{r+1} − 1)/(θ − 1)`` for θ > 1 and
    ``r + 1`` for θ = 1.

    Args:
        theta: in-degree bound of the projected graph ``G^θ``.
        num_layers: GNN depth ``r`` (hops of dependency).
    """
    if theta < 1:
        raise PrivacyError(f"theta must be >= 1, got {theta}")
    if num_layers < 0:
        raise PrivacyError(f"num_layers must be >= 0, got {num_layers}")
    if theta == 1:
        return num_layers + 1
    return (theta ** (num_layers + 1) - 1) // (theta - 1)


def max_occurrences_dual_stage(frequency_threshold: int) -> int:
    """Dual-stage sampling's occurrence bound: ``N_g* = M`` (Section IV-A).

    The frequency vector caps every node at ``M`` subgraph memberships
    across *both* stages, so the bound no longer grows with GNN depth.
    """
    if frequency_threshold < 1:
        raise PrivacyError(
            f"frequency_threshold must be >= 1, got {frequency_threshold}"
        )
    return int(frequency_threshold)


def node_level_sensitivity(clip_bound: float, max_occurrences: int) -> float:
    """Lemma 2: ``Δ_g ≤ C · N_g``.

    Removing one node changes at most ``N_g`` per-subgraph gradients in any
    batch, each clipped to norm ``C``, so the batched-gradient difference is
    at most ``C · N_g`` in l2.
    """
    if clip_bound <= 0:
        raise PrivacyError(f"clip_bound must be positive, got {clip_bound}")
    if max_occurrences < 1:
        raise PrivacyError(f"max_occurrences must be >= 1, got {max_occurrences}")
    return float(clip_bound) * float(max_occurrences)


def edge_level_sensitivity(clip_bound: float, max_edge_occurrences: int) -> float:
    """Edge-level DP extension (Section II-B's remark).

    Under edge-level adjacency, removing one *edge* perturbs only the
    subgraphs containing that edge.  With the frequency cap ``M`` applied to
    both endpoints, an edge appears in at most ``min(M_u, M_v) ≤ M``
    subgraphs, so the same ``C · N`` form holds with the edge occurrence
    bound — strictly smaller noise than the node-level bound.
    """
    return node_level_sensitivity(clip_bound, max_edge_occurrences)
