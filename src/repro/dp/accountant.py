"""Privacy accounting for PrivIM training (Theorem 3) and σ calibration.

The per-iteration mechanism samples ``B`` subgraphs uniformly from a
container of ``m`` and releases the noised, clipped gradient sum.  A single
node appears in at most ``N_g`` subgraphs, so the number of "touched"
subgraphs in a batch follows ``Binomial(B, N_g / m)`` and the shifted-
Gaussian divergence is mixed over that distribution (Theorem 3):

``γ(α) = 1/(α−1) · log Σ_{i=0..N_g} ρ_i · exp(α(α−1) i² / (2 N_g² σ²))``

with ``ρ_i = C(B, i) (N_g/m)^i (1 − N_g/m)^{B−i}``.  All sums are computed
in log space so large batches and orders stay stable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import gammaln, logsumexp

from repro.errors import CalibrationError, PrivacyError
from repro.dp.rdp import DEFAULT_ALPHAS, best_epsilon


def _log_binomial_pmf(count: int, trials: int, probability: float) -> np.ndarray:
    """Log pmf of ``Binomial(trials, probability)`` at ``0..count``.

    The degenerate probabilities are handled explicitly: evaluating
    ``i * log(p)`` / ``(trials - i) * log1p(-p)`` at ``p ∈ {0, 1}`` produces
    ``0 · (-inf) = NaN`` terms (and RuntimeWarnings) even under ``np.where``
    masking, which used to poison ε when the touch probability ``N_g / m``
    reached 1.0 on small containers.
    """
    if not 0.0 <= probability <= 1.0:
        raise PrivacyError(f"probability must be in [0, 1], got {probability}")
    if probability == 0.0:
        # Point mass at i = 0.
        out = np.full(count + 1, -np.inf)
        out[0] = 0.0
        return out
    if probability == 1.0:
        # Point mass at i = trials (outside 0..count when count < trials).
        out = np.full(count + 1, -np.inf)
        if count >= trials:
            out[trials] = 0.0
        return out
    i = np.arange(count + 1)
    log_coeff = gammaln(trials + 1) - gammaln(i + 1) - gammaln(trials - i + 1)
    log_p = i * np.log(probability)
    log_q = (trials - i) * np.log1p(-probability)
    return log_coeff + log_p + log_q


def privim_step_rdp(
    alpha: float,
    sigma: float,
    batch_size: int,
    num_subgraphs: int,
    max_occurrences: int,
) -> float:
    """One-iteration RDP of Algorithm 2 at order ``alpha`` (Theorem 3, Eq. 8).

    Args:
        alpha: Rényi order (> 1).
        sigma: noise multiplier (noise std is ``sigma · C · N_g``).
        batch_size: subgraphs per batch ``B``.
        num_subgraphs: container size ``m = |G_sub|``.
        max_occurrences: occurrence bound ``N_g`` (Lemma 1) or ``N_g* = M``.

    Returns:
        γ such that one iteration is ``(α, γ)``-RDP.
    """
    if alpha <= 1:
        raise PrivacyError(f"alpha must be > 1, got {alpha}")
    if sigma <= 0:
        raise PrivacyError(f"sigma must be positive, got {sigma}")
    if batch_size < 1 or num_subgraphs < 1:
        raise PrivacyError("batch_size and num_subgraphs must be >= 1")
    if max_occurrences < 1:
        raise PrivacyError(f"max_occurrences must be >= 1, got {max_occurrences}")
    if batch_size > num_subgraphs:
        raise PrivacyError("batch_size cannot exceed the container size")

    touch_probability = min(max_occurrences / num_subgraphs, 1.0)
    # A node cannot touch more batch slots than min(N_g, B).
    top = min(max_occurrences, batch_size)

    if touch_probability >= 1.0:
        # Degenerate: every batch is fully touched; reduces to a pure
        # Gaussian shifted by the worst case i = top.
        return alpha * top**2 / (2.0 * max_occurrences**2 * sigma**2)

    log_rho = _log_binomial_pmf(top, batch_size, touch_probability)
    # Probability mass of i in (top, B] collapses onto i = top (the shift
    # cannot exceed N_g · C), keeping the bound valid.
    if top < batch_size:
        i_tail = np.arange(top + 1, batch_size + 1)
        log_tail = (
            gammaln(batch_size + 1)
            - gammaln(i_tail + 1)
            - gammaln(batch_size - i_tail + 1)
            + i_tail * np.log(touch_probability)
            + (batch_size - i_tail) * np.log1p(-touch_probability)
        )
        log_rho[top] = np.logaddexp(log_rho[top], logsumexp(log_tail))

    i = np.arange(top + 1)
    exponents = alpha * (alpha - 1.0) * i**2 / (2.0 * max_occurrences**2 * sigma**2)
    log_terms = log_rho + exponents
    return float(logsumexp(log_terms) / (alpha - 1.0))


def poisson_subsampled_gaussian_rdp(
    alpha: int,
    sigma: float,
    sampling_rate: float,
) -> float:
    """Classical Poisson-subsampled Gaussian RDP (integer orders).

    The Mironov–Talwar–Zhang bound used by standard DP-SGD accountants:
    ``γ(α) = 1/(α−1) log Σ_{k=0..α} C(α,k)(1−q)^{α−k} q^k exp((k²−k)/(2σ²))``.

    Included as the comparison point for the accountant ablation in
    DESIGN.md — it ignores the occurrence structure Theorem 3 exploits.
    """
    if not isinstance(alpha, (int, np.integer)) or alpha < 2:
        raise PrivacyError(f"alpha must be an integer >= 2, got {alpha}")
    if sigma <= 0:
        raise PrivacyError(f"sigma must be positive, got {sigma}")
    if not 0.0 < sampling_rate <= 1.0:
        raise PrivacyError(f"sampling_rate must be in (0, 1], got {sampling_rate}")

    if sampling_rate == 1.0:
        # No subsampling: the mixture collapses to the plain Gaussian term
        # k = alpha, i.e. gamma = (alpha^2 - alpha)/(2 sigma^2 (alpha-1)).
        return float(alpha / (2.0 * sigma**2))

    k = np.arange(alpha + 1)
    log_coeff = gammaln(alpha + 1) - gammaln(k + 1) - gammaln(alpha - k + 1)
    with np.errstate(divide="ignore"):
        log_q = np.where(k > 0, k * np.log(sampling_rate), 0.0)
        log_1q = np.where(alpha - k > 0, (alpha - k) * np.log1p(-sampling_rate), 0.0)
    exponents = (k**2 - k) / (2.0 * sigma**2)
    return float(logsumexp(log_coeff + log_q + log_1q + exponents) / (alpha - 1.0))


@dataclass
class PrivacyAccountant:
    """Tracks cumulative RDP of Algorithm 2 over training iterations.

    Attributes:
        sigma: noise multiplier.
        batch_size: subgraphs per iteration.
        num_subgraphs: container size ``m``.
        max_occurrences: node occurrence bound ``N_g``.
        alphas: Rényi order grid for the final conversion.
    """

    sigma: float
    batch_size: int
    num_subgraphs: int
    max_occurrences: int
    alphas: tuple[float, ...] = DEFAULT_ALPHAS

    def __post_init__(self) -> None:
        self.steps = 0
        # Per-order single-step γ, computed lazily and cached.
        self._step_gammas: dict[float, float] | None = None
        # Optional budget ledger; see attach_ledger().
        self.ledger = None

    def _gammas(self) -> dict[float, float]:
        if self._step_gammas is None:
            self._step_gammas = {
                alpha: privim_step_rdp(
                    alpha,
                    self.sigma,
                    self.batch_size,
                    self.num_subgraphs,
                    self.max_occurrences,
                )
                for alpha in self.alphas
            }
        return self._step_gammas

    def attach_ledger(self, ledger) -> "PrivacyAccountant":
        """Emit one event per composition step to ``ledger``.

        ``ledger`` is a :class:`repro.obs.ledger.PrivacyLedger` (any object
        with a ``record_step(accountant)`` method works).  Returns ``self``
        for chaining.
        """
        self.ledger = ledger
        return self

    def step(self, count: int = 1) -> None:
        """Record ``count`` training iterations.

        With a ledger attached, each of the ``count`` composition steps
        emits its own event (running ε, best α) as it is recorded.
        """
        if count < 0:
            raise PrivacyError(f"count must be non-negative, got {count}")
        if self.ledger is None:
            self.steps += count
            return
        for _ in range(count):
            self.steps += 1
            self.ledger.record_step(self)

    def rdp(self, alpha: float) -> float:
        """Cumulative γ at order ``alpha`` after the recorded steps."""
        gammas = self._gammas()
        if alpha not in gammas:
            gammas[alpha] = privim_step_rdp(
                alpha, self.sigma, self.batch_size, self.num_subgraphs, self.max_occurrences
            )
        return gammas[alpha] * self.steps

    def epsilon(self, delta: float) -> float:
        """Tightest ε over the order grid for the recorded steps."""
        if self.steps == 0:
            return 0.0
        epsilon, _ = best_epsilon(lambda a: self.rdp(a), delta, self.alphas)
        return max(epsilon, 0.0)


def calibrate_sigma(
    target_epsilon: float,
    delta: float,
    steps: int,
    batch_size: int,
    num_subgraphs: int,
    max_occurrences: int,
    *,
    sigma_low: float = 1e-2,
    sigma_high: float = 1e4,
    tolerance: float = 1e-3,
) -> float:
    """Smallest noise multiplier meeting ``(target_epsilon, delta)``.

    Bisection over σ on the monotone map σ → ε(T steps).  Raises
    :class:`CalibrationError` if even ``sigma_high`` cannot reach the
    target.
    """
    if target_epsilon <= 0:
        raise PrivacyError(f"target_epsilon must be positive, got {target_epsilon}")
    if steps < 1:
        raise PrivacyError(f"steps must be >= 1, got {steps}")

    def epsilon_for(sigma: float) -> float:
        accountant = PrivacyAccountant(sigma, batch_size, num_subgraphs, max_occurrences)
        accountant.step(steps)
        return accountant.epsilon(delta)

    low, high = sigma_low, sigma_high
    if epsilon_for(high) > target_epsilon:
        raise CalibrationError(
            f"even sigma={high} gives epsilon > {target_epsilon}; "
            "reduce steps, batch size, or occurrences"
        )
    if epsilon_for(low) <= target_epsilon:
        return low
    while high / low > 1.0 + tolerance:
        middle = np.sqrt(low * high)
        if epsilon_for(middle) > target_epsilon:
            low = middle
        else:
            high = middle
    return float(high)
