"""Noise mechanisms: Gaussian, Laplace, Symmetric Multivariate Laplace.

The Gaussian mechanism powers DP-SGD (Algorithm 2).  The Laplace mechanism
is used by the paper's Example 2 (why greedy IM cannot be privatised
directly).  The Symmetric Multivariate Laplace (SML) distribution is the
noise the HP baseline (Xiang et al., S&P 2024) injects.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PrivacyError
from repro.utils.rng import ensure_rng


def _check_scale(name: str, value: float) -> None:
    if not value > 0:
        raise PrivacyError(f"{name} must be positive, got {value}")


def gaussian_noise(
    sensitivity: float,
    sigma: float,
    shape: int | tuple[int, ...],
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample ``N(0, (sigma * sensitivity)^2 I)`` — Algorithm 2, line 8.

    Args:
        sensitivity: the query's l2-sensitivity Δ_g.
        sigma: the noise multiplier (calibrated by the accountant).
        shape: output shape.
        rng: seed or generator.
    """
    _check_scale("sensitivity", sensitivity)
    _check_scale("sigma", sigma)
    generator = ensure_rng(rng)
    return generator.normal(0.0, sigma * sensitivity, size=shape)


def laplace_noise(
    sensitivity: float,
    epsilon: float,
    shape: int | tuple[int, ...],
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample Laplace noise with scale ``sensitivity / epsilon``.

    This is the mechanism the paper's Example 2 analyses: for greedy IM on
    Gowalla the sensitivity is ~|V|, so the noise scale (~2·10^5 at ε = 1)
    drowns the marginal gains — the motivation for the GNN approach.
    """
    _check_scale("sensitivity", sensitivity)
    _check_scale("epsilon", epsilon)
    generator = ensure_rng(rng)
    return generator.laplace(0.0, sensitivity / epsilon, size=shape)


def symmetric_multivariate_laplace_noise(
    scale: float,
    dimension: int,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample from the Symmetric Multivariate Laplace distribution.

    SML(0, scale² I) is a Gaussian scale mixture: draw ``W ~ Exp(1)`` then
    ``X ~ N(0, W · scale² I)``.  Marginals are symmetric and heavier-tailed
    than Gaussian; this is the noise the HP baseline's HeterPoisson
    mechanism adds to per-node gradient contributions.
    """
    _check_scale("scale", scale)
    if dimension < 1:
        raise PrivacyError(f"dimension must be >= 1, got {dimension}")
    generator = ensure_rng(rng)
    mixing = generator.exponential(1.0)
    return generator.normal(0.0, scale * np.sqrt(mixing), size=dimension)
