"""Synthetic generators specialised for the paper's dataset families."""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng


def scale_free_directed_graph(
    num_nodes: int,
    out_degree: int,
    *,
    reciprocity: float = 0.2,
    rng: int | np.random.Generator | None = None,
) -> Graph:
    """Directed preferential-attachment graph (Bitcoin/Email-like).

    Each incoming node issues ``out_degree`` arcs to existing nodes chosen
    preferentially by current in-degree, so in-degrees are heavy-tailed as
    in trust/communication networks.  With probability ``reciprocity`` each
    arc also gains its reverse arc, matching the partial mutuality of
    who-trusts-whom graphs.
    """
    if num_nodes < 2:
        raise DatasetError("scale_free_directed_graph needs at least 2 nodes")
    if out_degree < 1:
        raise DatasetError(f"out_degree must be >= 1, got {out_degree}")
    if not 0.0 <= reciprocity <= 1.0:
        raise DatasetError("reciprocity must be in [0, 1]")
    generator = ensure_rng(rng)

    start = min(out_degree + 1, num_nodes - 1)
    edges: set[tuple[int, int]] = set()
    # Preferential pool: node ids repeated once per received arc (+1 smoothing).
    pool: list[int] = list(range(start))
    for new_node in range(start, num_nodes):
        arcs = min(out_degree, new_node)
        chosen: set[int] = set()
        while len(chosen) < arcs:
            if generator.random() < 0.2:  # uniform exploration keeps pool fresh
                candidate = int(generator.integers(0, new_node))
            else:
                candidate = pool[int(generator.integers(0, len(pool)))]
            if candidate != new_node:
                chosen.add(candidate)
        for target in chosen:
            edges.add((new_node, target))
            pool.append(target)
            if generator.random() < reciprocity:
                edges.add((target, new_node))
                pool.append(new_node)
    return Graph(num_nodes, np.asarray(sorted(edges), dtype=np.int64), directed=True)


def community_directed_graph(
    num_nodes: int,
    num_communities: int,
    avg_degree: float,
    *,
    mixing: float = 0.1,
    rng: int | np.random.Generator | None = None,
) -> Graph:
    """Dense directed community graph (Email-Eu-core-like).

    The Email dataset is a small, dense institutional email network with
    department structure: most arcs stay within a community, a fraction
    ``mixing`` crosses communities.
    """
    if num_nodes < num_communities or num_communities < 1:
        raise DatasetError("need num_nodes >= num_communities >= 1")
    if avg_degree <= 0 or avg_degree >= num_nodes:
        raise DatasetError("avg_degree must be in (0, num_nodes)")
    generator = ensure_rng(rng)

    community = generator.integers(0, num_communities, size=num_nodes)
    members = [np.flatnonzero(community == c) for c in range(num_communities)]
    # Guard against empty communities on tiny graphs.
    members = [m if len(m) else np.array([0]) for m in members]

    total_arcs = int(round(avg_degree * num_nodes))
    edges: set[tuple[int, int]] = set()
    attempts = 0
    while len(edges) < total_arcs and attempts < 20 * total_arcs:
        attempts += 1
        source = int(generator.integers(0, num_nodes))
        if generator.random() < mixing:
            target = int(generator.integers(0, num_nodes))
        else:
            home = members[community[source]]
            target = int(home[int(generator.integers(0, len(home)))])
        if source != target:
            edges.add((source, target))
    return Graph(num_nodes, np.asarray(sorted(edges), dtype=np.int64), directed=True)
