"""The paper's seven evaluation datasets (Table I) as synthetic equivalents.

The SNAP originals are not downloadable in this offline environment, so each
dataset is replaced by a seeded synthetic graph whose family (directed
trust/communication network, undirected social/citation network), degree
distribution, density, and clustering match the original's character.  The
``scale`` argument shrinks node counts proportionally (default 1.0 = the
paper's sizes); the experiment harness uses small scales so every figure
regenerates in minutes.  Substitutions are documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import community_directed_graph, scale_free_directed_graph
from repro.errors import DatasetError
from repro.graphs.generators import powerlaw_cluster_graph
from repro.graphs.graph import Graph
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Registry entry mirroring one row of the paper's Table I.

    Attributes:
        name: dataset key (lowercase).
        num_nodes: node count of the original graph.
        num_edges: edge count of the original graph (directed arcs for
            directed datasets, undirected edges otherwise).
        directed: original graph's directedness.
        avg_degree: Table I's reported average degree.
        family: generator family used for the synthetic equivalent.
        description: one-line provenance note (Appendix L).
    """

    name: str
    num_nodes: int
    num_edges: int
    directed: bool
    avg_degree: float
    family: str
    description: str


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            "email", 1_000, 25_600, True, 25.44, "community-directed",
            "European research institution email network (dense, departmental)",
        ),
        DatasetSpec(
            "bitcoin", 5_900, 35_600, True, 6.05, "scale-free-directed",
            "Bitcoin OTC who-trusts-whom network",
        ),
        DatasetSpec(
            "lastfm", 7_600, 27_800, False, 7.29, "powerlaw-cluster",
            "LastFM user friendship network (March 2020 API crawl)",
        ),
        DatasetSpec(
            "hepph", 12_000, 118_500, False, 19.74, "powerlaw-cluster",
            "High Energy Physics Phenomenology co-authorship network",
        ),
        DatasetSpec(
            "facebook", 22_500, 171_000, False, 15.22, "powerlaw-cluster",
            "Facebook official-page mutual-like network",
        ),
        DatasetSpec(
            "gowalla", 196_000, 950_300, False, 9.67, "powerlaw-cluster",
            "Gowalla location-based check-in friendship network",
        ),
        DatasetSpec(
            "friendster", 65_600_000, 1_800_000_000, False, 55.06, "powerlaw-cluster",
            "Friendster social network (trained/evaluated in partitions)",
        ),
    ]
}

#: The six primary datasets of the paper's main evaluation, in Table I order.
PRIMARY_DATASETS = ["email", "bitcoin", "lastfm", "hepph", "facebook", "gowalla"]


def dataset_names(*, include_friendster: bool = False) -> list[str]:
    """Evaluation dataset keys in Table I order."""
    names = list(PRIMARY_DATASETS)
    if include_friendster:
        names.append("friendster")
    return names


def dataset_statistics(name: str) -> DatasetSpec:
    """Registry entry for ``name`` (raises :class:`DatasetError` if unknown)."""
    key = name.lower()
    if key not in DATASETS:
        raise DatasetError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    return DATASETS[key]


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    max_nodes: int | None = None,
    rng: int | np.random.Generator | None = None,
) -> Graph:
    """Generate the synthetic equivalent of dataset ``name``.

    Args:
        name: a key from :data:`DATASETS` (case-insensitive).
        scale: node-count multiplier relative to the original size.
        max_nodes: optional hard cap applied after scaling (how the huge
            Friendster graph is made tractable; the paper itself partitions
            it rather than loading it whole).
        rng: seed or generator; by default each dataset uses a fixed seed
            derived from its name so repeated loads agree.

    Returns:
        A :class:`~repro.graphs.Graph` with matched directedness, degree
        shape, and density.
    """
    spec = dataset_statistics(name)
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")

    num_nodes = max(int(round(spec.num_nodes * scale)), 20)
    if max_nodes is not None:
        num_nodes = min(num_nodes, int(max_nodes))

    if rng is None:
        # Stable per-dataset default seed (crc32 is process-independent,
        # unlike hash() under PYTHONHASHSEED randomisation).
        import zlib

        rng = zlib.crc32(spec.name.encode("utf-8"))
    generator = ensure_rng(rng)

    if spec.family == "community-directed":
        communities = max(num_nodes // 25, 2)
        # Tiny scales cannot support the original density; cap the degree.
        avg_degree = min(spec.avg_degree, 0.5 * (num_nodes - 1))
        graph = community_directed_graph(num_nodes, communities, avg_degree, rng=generator)
    elif spec.family == "scale-free-directed":
        out_degree = max(int(round(spec.avg_degree / 1.2)), 1)
        graph = scale_free_directed_graph(num_nodes, out_degree, rng=generator)
    elif spec.family == "powerlaw-cluster":
        attachment = max(int(round(spec.avg_degree / 2.0)), 1)
        attachment = min(attachment, num_nodes - 1)
        graph = powerlaw_cluster_graph(num_nodes, attachment, 0.3, rng=generator)
    else:
        raise DatasetError(f"unknown generator family {spec.family!r}")

    # Preferential-attachment generators correlate node id with age (and
    # hence degree); real datasets have arbitrary ids.  Shuffle labels so
    # nothing downstream can exploit id order (e.g. tie-breaking in top-k).
    permutation = generator.permutation(graph.num_nodes)
    shuffled, _ = graph.subgraph(permutation)
    return shuffled
