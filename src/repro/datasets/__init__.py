"""Dataset registry: the paper's seven graphs as synthetic equivalents."""

from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    dataset_statistics,
    load_dataset,
)
from repro.datasets.synthetic import scale_free_directed_graph

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "dataset_statistics",
    "load_dataset",
    "scale_free_directed_graph",
]
