"""Seeded random-number-generator helpers.

Everything stochastic in this library (graph generation, random walks,
DP noise, Monte-Carlo diffusion, weight initialisation) accepts either a
``numpy.random.Generator`` or an integer seed.  :func:`ensure_rng` normalises
both to a ``Generator`` so results are reproducible end to end.
"""

from __future__ import annotations

import os

import numpy as np


def ensure_rng(rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    Args:
        rng: ``None`` (fresh nondeterministic generator), an integer seed,
            or an existing generator (returned unchanged).

    Returns:
        A ``numpy.random.Generator``.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int, or numpy Generator, got {type(rng)!r}")


def spawn_rngs(rng: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Useful when a pipeline has several stochastic stages (sampling, noise,
    evaluation) that must not share a stream, e.g. so changing the number of
    training iterations does not perturb the evaluation randomness.
    """
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def derive_root_entropy(rng: int | np.random.Generator | None = None) -> int:
    """Draw a 63-bit root entropy value for a per-item seed stream.

    The parallel sampling engine needs one independent generator per start
    node whose stream does not depend on scheduling order.  Consuming a
    single integer from the master generator and deriving children with
    :func:`child_generator` gives exactly that: the master stream advances
    by one draw regardless of how many children are spawned, and every
    child is a pure function of ``(root_entropy, key)``.
    """
    return int(ensure_rng(rng).integers(0, 2**63 - 1))


def child_generator(root_entropy: int, *key: int) -> np.random.Generator:
    """Deterministic child generator for ``key`` under ``root_entropy``.

    Built on ``numpy.random.SeedSequence`` spawn keys, so children for
    distinct keys are statistically independent and identical across
    processes — the property the serial-vs-parallel equivalence guarantee
    rests on.
    """
    sequence = np.random.SeedSequence(
        entropy=int(root_entropy), spawn_key=tuple(int(k) for k in key)
    )
    return np.random.default_rng(sequence)


def _state_to_jsonable(value):
    """Deep-copy a bit-generator state into JSON-safe builtins."""
    if isinstance(value, dict):
        return {key: _state_to_jsonable(item) for key, item in value.items()}
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _state_from_jsonable(value):
    """Inverse of :func:`_state_to_jsonable` (idempotent on native states)."""
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=value["dtype"])
        return {key: _state_from_jsonable(item) for key, item in value.items()}
    return value


def serialize_rng_state(generator: np.random.Generator) -> dict:
    """JSON-serialisable snapshot of ``generator.bit_generator.state``.

    Bit-generator states mix Python ints, numpy scalars, and (for MT19937)
    uint32 arrays; this normalises all of them to builtins so the snapshot
    survives a ``json.dumps`` round trip inside a training checkpoint.
    Restore with :func:`restore_rng_state` or :func:`generator_from_state`.
    """
    return _state_to_jsonable(generator.bit_generator.state)


def restore_rng_state(generator: np.random.Generator, state: dict) -> None:
    """Restore ``generator`` in place to a :func:`serialize_rng_state` snapshot.

    The generator's subsequent draws are bit-identical to the draws the
    snapshotted generator would have produced — the property crash-safe
    training resume rests on.
    """
    generator.bit_generator.state = _state_from_jsonable(state)


def generator_from_state(state: dict) -> np.random.Generator:
    """Build a fresh ``Generator`` from a :func:`serialize_rng_state` snapshot."""
    native = _state_from_jsonable(state)
    name = native.get("bit_generator", "PCG64")
    bit_generator_cls = getattr(np.random, str(name), None)
    if bit_generator_cls is None:
        raise ValueError(f"unknown bit generator {name!r} in rng state")
    bit_generator = bit_generator_cls()
    bit_generator.state = native
    return np.random.Generator(bit_generator)


def bench_seed() -> int:
    """The benchmark suite's shared master seed.

    Benches must derive all randomness from this helper (or
    :func:`bench_rng`) instead of ad-hoc literals, so that serial and
    parallel timings of the same workload sample the same graphs and
    walks.  Overridable via the ``REPRO_BENCH_SEED`` environment variable.
    """
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


def bench_rng(seed: int | None = None) -> np.random.Generator:
    """A fresh generator seeded with :func:`bench_seed` (or ``seed``)."""
    if seed is None:
        seed = bench_seed()
    return ensure_rng(int(seed))


class RngMixin:
    """Mixin that stores a normalised generator under ``self.rng``."""

    def __init__(self, rng: int | np.random.Generator | None = None) -> None:
        self.rng = ensure_rng(rng)
