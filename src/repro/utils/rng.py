"""Seeded random-number-generator helpers.

Everything stochastic in this library (graph generation, random walks,
DP noise, Monte-Carlo diffusion, weight initialisation) accepts either a
``numpy.random.Generator`` or an integer seed.  :func:`ensure_rng` normalises
both to a ``Generator`` so results are reproducible end to end.
"""

from __future__ import annotations

import numpy as np


def ensure_rng(rng: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    Args:
        rng: ``None`` (fresh nondeterministic generator), an integer seed,
            or an existing generator (returned unchanged).

    Returns:
        A ``numpy.random.Generator``.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, int, or numpy Generator, got {type(rng)!r}")


def spawn_rngs(rng: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Useful when a pipeline has several stochastic stages (sampling, noise,
    evaluation) that must not share a stream, e.g. so changing the number of
    training iterations does not perturb the evaluation randomness.
    """
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]


class RngMixin:
    """Mixin that stores a normalised generator under ``self.rng``."""

    def __init__(self, rng: int | np.random.Generator | None = None) -> None:
        self.rng = ensure_rng(rng)
