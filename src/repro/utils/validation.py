"""Small argument-validation helpers used at public API boundaries.

These raise ``ValueError``/``TypeError`` with consistent messages so the
library fails fast on bad parameters instead of producing silently wrong
privacy accounting or sampling behaviour.
"""

from __future__ import annotations

from typing import Any


def check_type(name: str, value: Any, expected: type | tuple[type, ...]) -> None:
    """Raise ``TypeError`` if ``value`` is not an instance of ``expected``."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise TypeError(f"{name} must be {expected_names}, got {type(value).__name__}")


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> None:
    """Raise ``ValueError`` unless ``value`` lies in the given interval."""
    low_ok = value >= low if low_inclusive else value > low
    high_ok = value <= high if high_inclusive else value < high
    if not (low_ok and high_ok):
        left = "[" if low_inclusive else "("
        right = "]" if high_inclusive else ")"
        raise ValueError(f"{name} must be in {left}{low}, {high}{right}, got {value}")
