"""Shared utilities: seeded randomness, validation, and text reporting."""

from repro.utils.rng import RngMixin, ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)
from repro.utils.tables import format_series, format_table

__all__ = [
    "RngMixin",
    "ensure_rng",
    "spawn_rngs",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "check_type",
    "format_series",
    "format_table",
]
