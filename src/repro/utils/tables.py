"""Plain-text rendering of experiment tables and series.

The experiment harness regenerates the paper's tables and figures as text:
tables become aligned ASCII grids, figures become (x, y) series blocks —
one block per plotted line — so the "shape" of each figure (orderings,
trends, peaks) is inspectable from a terminal or a log file.
"""

from __future__ import annotations

from typing import Any, Sequence


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have the same number of cells as headers")
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in text_rows)
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[Any],
    ys: Sequence[Any],
    *,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one plotted line of a figure as an ``x -> y`` block."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    lines = [f"series: {name}  ({x_label} -> {y_label})"]
    lines.extend(f"  {_cell(x)} -> {_cell(y)}" for x, y in zip(xs, ys))
    return "\n".join(lines)
