"""Stacked GNN models and the factory used throughout the experiments.

The paper's default model is a three-layer GRAT with 32 hidden units whose
head emits one probability per node (the likelihood of being picked for the
seed set).  :func:`build_gnn` produces any of the five evaluated
architectures behind the same interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.gnn.layers import GATConv, GCNConv, GINConv, GRATConv, SAGEConv
from repro.nn.module import Linear, Module
from repro.nn.tensor import Tensor
from repro.utils.rng import spawn_rngs

_LAYER_TYPES = {
    "gcn": GCNConv,
    "sage": SAGEConv,
    "graphsage": SAGEConv,
    "gat": GATConv,
    "grat": GRATConv,
    "gin": GINConv,
}


def available_models() -> list[str]:
    """Canonical model names accepted by :func:`build_gnn`."""
    return ["grat", "gcn", "gat", "gin", "sage"]


@dataclass
class GNNConfig:
    """Hyperparameters of a stacked GNN.

    Attributes:
        model: one of :func:`available_models` (paper default ``"grat"``).
        in_features: node feature dimensionality (default matches
            :func:`repro.gnn.features.degree_features`).
        hidden_features: width of each hidden layer (paper uses 32).
        num_layers: message-passing depth ``r`` (paper uses 3).
        attention_heads: heads for the attention models (GAT/GRAT);
            ``hidden_features`` must be divisible by it.
        rng: seed for weight initialisation.
    """

    model: str = "grat"
    in_features: int = 5
    hidden_features: int = 32
    num_layers: int = 3
    attention_heads: int = 1
    rng: int | np.random.Generator | None = field(default=None, repr=False)


class GNN(Module):
    """``num_layers`` convolutions + ReLU, then a scalar sigmoid head.

    ``forward`` returns a ``(N,)`` tensor of per-node seed probabilities
    ``φ(h_u) ∈ (0, 1)`` — the quantity Eq. 5's second term sums and the
    seed selector ranks.
    """

    def __init__(self, config: GNNConfig) -> None:
        name = config.model.lower()
        if name not in _LAYER_TYPES:
            raise TrainingError(
                f"unknown model {config.model!r}; choose from {available_models()}"
            )
        if config.num_layers < 1:
            raise TrainingError("num_layers must be >= 1")
        layer_type = _LAYER_TYPES[name]
        rngs = spawn_rngs(config.rng, config.num_layers + 1)

        self.config = config
        self.convs = []
        width_in = config.in_features
        attention_types = (GATConv, GRATConv)
        for layer_index in range(config.num_layers):
            if layer_type in attention_types and config.attention_heads > 1:
                conv = layer_type(
                    width_in,
                    config.hidden_features,
                    heads=config.attention_heads,
                    rng=rngs[layer_index],
                )
            else:
                conv = layer_type(width_in, config.hidden_features, rng=rngs[layer_index])
            self.convs.append(conv)
            width_in = config.hidden_features
        self.head = Linear(config.hidden_features, 1, rng=rngs[-1])
        # The hidden activations are ReLU outputs (non-negative), so a
        # non-negative head makes the *untrained* ranking monotone in
        # activation magnitude instead of an arbitrary sign flip.  Under DP
        # the number of informative updates is limited, so starting from a
        # structurally sensible ranking matters (FastCover-style models rely
        # on the same monotonicity once trained).
        self.head.weight.data = np.abs(self.head.weight.data)

    @property
    def num_layers(self) -> int:
        """Message-passing depth ``r`` (determines N_g via Lemma 1)."""
        return self.config.num_layers

    def node_embeddings(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_weight: np.ndarray | None = None,
        *,
        plan=None,
    ) -> Tensor:
        """Hidden representation after all convolutions, shape ``(N, hidden)``.

        ``plan`` optionally carries a
        :class:`repro.core.compute_plan.ComputePlan` built for the same
        edge set, letting the layers reuse static derived arrays instead of
        rebuilding them each call; it never changes the result.
        """
        hidden = x
        for conv in self.convs:
            hidden = conv(hidden, edge_index, edge_weight, plan=plan).relu()
        return hidden

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_weight: np.ndarray | None = None,
        *,
        plan=None,
    ) -> Tensor:
        hidden = self.node_embeddings(x, edge_index, edge_weight, plan=plan)
        return self.head(hidden).sigmoid().reshape(-1)


def build_gnn(
    model: str = "grat",
    *,
    in_features: int = 5,
    hidden_features: int = 32,
    num_layers: int = 3,
    attention_heads: int = 1,
    rng: int | np.random.Generator | None = None,
) -> GNN:
    """Construct a :class:`GNN` (paper defaults: 3-layer GRAT, 32 hidden).

    ``attention_heads`` applies to the attention architectures (GAT/GRAT);
    ``hidden_features`` must be divisible by it.
    """
    config = GNNConfig(
        model=model,
        in_features=in_features,
        hidden_features=hidden_features,
        num_layers=num_layers,
        attention_heads=attention_heads,
        rng=rng,
    )
    return GNN(config)
