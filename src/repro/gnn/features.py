"""Structural node features.

The paper's datasets carry no node attributes, so (as is standard for
structure-only IM learning, e.g. FastCover/GRAT) nodes are featurised from
local structure: normalised in/out degree plus a constant channel.  The same
featuriser is applied to each training subgraph and to the full evaluation
graph so train and inference distributions match.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph


def degree_features(graph: Graph, *, dim: int = 5) -> np.ndarray:
    """Per-node structural features of dimension ``dim``.

    Channels, in order:

    0. out-degree, log-scaled and max-normalised;
    1. in-degree, log-scaled and max-normalised;
    2. constant 1 (bias channel);
    3. inverse degree ``1 / (1 + deg_out)`` (when ``dim >= 4``);
    4+. seeded uniform random channels (when ``dim >= 5``).

    Log scaling keeps heavy-tailed social-network degrees in a bounded range
    so clipped DP gradients are not dominated by hub nodes.  The random
    channels are standard symmetry-breaking features: a *trained* model
    learns to rely on the structural channels, whereas a model whose weights
    have been randomised by DP noise mixes the random channels into its
    scores and its seed ranking degrades accordingly — without them, degree
    features are so mutually parallel that even a destroyed model ranks
    nodes by degree and no utility is ever lost to noise.
    """
    if dim < 1:
        raise GraphError(f"feature dim must be >= 1, got {dim}")
    out_deg = graph.out_degrees().astype(np.float64)
    in_deg = graph.in_degrees().astype(np.float64)

    def normalised(values: np.ndarray) -> np.ndarray:
        scaled = np.log1p(values)
        peak = scaled.max() if scaled.size and scaled.max() > 0 else 1.0
        return scaled / peak

    channels = [
        normalised(out_deg),
        normalised(in_deg),
        np.ones(graph.num_nodes),
        1.0 / (1.0 + out_deg),
    ]
    if dim > len(channels):
        # Deterministic per-call noise: a fixed seed keeps featurisation
        # reproducible for a given graph size.
        noise_rng = np.random.default_rng(0x5EED)
        for _ in range(dim - len(channels)):
            channels.append(noise_rng.uniform(0.0, 1.0, size=graph.num_nodes))
    features = np.stack(channels[:dim], axis=1)
    return features
