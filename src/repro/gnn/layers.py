"""The five GNN convolution layers evaluated in the paper (Appendix G).

Every layer implements ``forward(x, edge_index, edge_weight) -> Tensor`` with
messages flowing source → target.  The formulations follow the paper's
Appendix G exactly:

* :class:`GCNConv` — symmetric degree-normalised sum (Eq. 31–32);
* :class:`SAGEConv` — mean aggregation concatenated with the self feature
  (Eq. 29–30);
* :class:`GATConv` — attention normalised over each *target's* incoming
  edges (Eq. 33–36);
* :class:`GRATConv` — the paper's preferred variant: the same attention
  scores normalised over each *source's* outgoing edges (Eq. 37–40), which
  penalises nodes whose coverage overlaps;
* :class:`GINConv` — MLP over ``(1 + ω)·h_v + Σ_u h_u`` (Eq. 41–42).
"""

from __future__ import annotations

import numpy as np

from repro.gnn.message_passing import (
    add_self_loops,
    aggregate_neighbors,
    check_edge_index,
    unit_edge_weights,
)
from repro.nn import functional as F
from repro.nn import kernels
from repro.nn.init import xavier_uniform
from repro.nn.module import Linear, Module, Parameter
from repro.nn.tensor import Tensor, concat


class GCNConv(Module):
    """Graph convolution with symmetric ``1/sqrt(d_u d_v)`` normalisation."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        self_loops: bool = True,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.linear = Linear(in_features, out_features, rng=rng)
        self.self_loops = bool(self_loops)

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_weight: np.ndarray | None = None,
        *,
        plan=None,
    ) -> Tensor:
        num_nodes = x.shape[0]

        def build_normalised_edges() -> tuple[np.ndarray, np.ndarray]:
            edges = check_edge_index(edge_index, num_nodes)
            weights = (
                np.ones(edges.shape[1])
                if edge_weight is None
                else np.asarray(edge_weight, dtype=np.float64)
            )
            if self.self_loops:
                edges, weights = add_self_loops(edges, weights, num_nodes)
            sources, targets = edges[0], edges[1]
            degree = np.bincount(targets, weights=weights, minlength=num_nodes)
            degree_source = np.bincount(sources, weights=weights, minlength=num_nodes)
            inv_sqrt_in = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
            inv_sqrt_out = 1.0 / np.sqrt(np.maximum(degree_source, 1e-12))
            norm = weights * inv_sqrt_out[sources] * inv_sqrt_in[targets]
            return edges, norm

        # Edges and weights are static per subgraph, so the self-loop
        # augmentation and symmetric normalisation are plan-cacheable; every
        # GCN layer of a stack shares the same entry.
        if plan is not None:
            edges, norm = plan.memo(
                ("gcn.norm", self.self_loops), build_normalised_edges
            )
        else:
            edges, norm = build_normalised_edges()
        aggregated = aggregate_neighbors(
            x,
            edges,
            num_nodes,
            edge_weight=norm,
            plan=plan,
            plan_key=f"gcn.loops={self.self_loops}",
        )
        return self.linear(aggregated)


class SAGEConv(Module):
    """GraphSAGE with mean aggregation and self/neighbour concatenation."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        self.linear = Linear(2 * in_features, out_features, rng=rng)

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_weight: np.ndarray | None = None,
        *,
        plan=None,
    ) -> Tensor:
        num_nodes = x.shape[0]
        aggregated = aggregate_neighbors(
            x, edge_index, num_nodes, edge_weight=edge_weight, reduce="mean", plan=plan
        )
        return self.linear(concat([x, aggregated], axis=1))


def _column_selector(width: int, start: int, count: int) -> Tensor:
    """Constant 0/1 matrix selecting columns ``start .. start+count``.

    Column slicing as a matmul keeps the operation inside the autograd
    primitives (the gradient is the transposed scatter back into place).
    """
    selector = np.zeros((width, count))
    selector[np.arange(start, start + count), np.arange(count)] = 1.0
    return Tensor(selector)


class _AttentionConv(Module):
    """Shared machinery for GAT/GRAT: only the softmax segment differs.

    Supports multi-head attention: each of the ``heads`` attention heads
    runs over its own ``out_features // heads`` slice of the transformed
    features and the head outputs are concatenated (the standard GAT
    arrangement).  ``out_features`` must be divisible by ``heads``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        heads: int = 1,
        negative_slope: float = 0.2,
        normalize_over: str = "target",
        rng: int | np.random.Generator | None = None,
    ) -> None:
        if normalize_over not in ("target", "source"):
            raise ValueError("normalize_over must be 'target' or 'source'")
        if heads < 1 or out_features % heads != 0:
            raise ValueError(
                f"out_features ({out_features}) must be divisible by heads ({heads})"
            )
        from repro.utils.rng import spawn_rngs

        rngs = spawn_rngs(rng, heads + 1)
        self.linear = Linear(in_features, out_features, bias=False, rng=rngs[0])
        self.heads = int(heads)
        self.head_dim = out_features // heads
        self.attentions = [
            Parameter(xavier_uniform((2 * self.head_dim, 1), rng=rngs[1 + h]))
            for h in range(heads)
        ]
        self.negative_slope = float(negative_slope)
        self.normalize_over = normalize_over

    @property
    def attention(self) -> Parameter:
        """The first head's attention vector (backward compatibility)."""
        return self.attentions[0]

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_weight: np.ndarray | None = None,
        *,
        plan=None,
    ) -> Tensor:
        num_nodes = x.shape[0]
        if plan is not None:
            edges = plan.memo(
                ("agg.edges", "base"), lambda: check_edge_index(edge_index, num_nodes)
            )
        else:
            edges = check_edge_index(edge_index, num_nodes)
        if edges.shape[1] == 0:
            return self.linear(x) * 0.0
        sources, targets = edges[0], edges[1]

        transformed = self.linear(x)
        segments = targets if self.normalize_over == "target" else sources
        # The per-softmax-segment sort and the per-target scatter index are
        # pure functions of the edge set, shared by every attention layer.
        sort = None if plan is None else plan.segment_sort(self.normalize_over)
        flat_index = None
        if (
            plan is not None
            and kernels.kernels_enabled()
            and self.head_dim > kernels.COLUMN_WIDTH_THRESHOLD
        ):
            flat_index = plan.memo(
                ("attn.flat", self.head_dim),
                lambda: kernels.flat_scatter_index(targets, self.head_dim),
            )
        weight_column = None
        if edge_weight is not None:
            weights = np.asarray(edge_weight, dtype=np.float64)
            # All-ones weights make the per-message multiply an exact no-op.
            if not unit_edge_weights(weights, plan):
                weight_column = Tensor(weights.reshape(-1, 1))
        # The gathers' backward pass scatters an E x out_features gradient
        # back per node; precompute its combined index once per edge
        # direction so every layer and iteration reuses it.
        width = transformed.shape[1]
        source_flat = target_flat = None
        if (
            plan is not None
            and kernels.kernels_enabled()
            and width > kernels.COLUMN_WIDTH_THRESHOLD
        ):
            source_flat = plan.memo(
                ("gather.flat", "source", width),
                lambda: kernels.flat_scatter_index(sources, width),
            )
            target_flat = plan.memo(
                ("gather.flat", "target", width),
                lambda: kernels.flat_scatter_index(targets, width),
            )
        source_feats = transformed.gather_rows(sources, flat_index=source_flat)

        if self.heads == 1:
            # Single-head fast path: the column selector would be the
            # identity, and the gather/concat, matmul/leaky/reshape, and
            # multiply/scatter triples collapse into fused nodes — each
            # bit-identical to the composition it replaces.
            pair = F.concat_gather_rows(
                source_feats, transformed, targets, flat_index=target_flat
            )
            logits = F.edge_attention_logits(
                pair, self.attentions[0], self.negative_slope
            )
            alpha = F.segment_softmax(logits, segments, num_nodes, sort=sort)
            if weight_column is None:
                return F.scatter_weighted_rows(
                    source_feats, alpha, targets, num_nodes, flat_index=flat_index
                )
            messages = source_feats * alpha.reshape(-1, 1) * weight_column
            return F.scatter_add_rows(
                messages, targets, num_nodes, flat_index=flat_index
            )

        target_feats = transformed.gather_rows(targets, flat_index=target_flat)
        head_outputs = []
        for head, attention in enumerate(self.attentions):
            lo = head * self.head_dim
            selector = _column_selector(transformed.shape[1], lo, self.head_dim)
            head_sources = source_feats @ selector
            head_targets = target_feats @ selector
            pair = concat([head_sources, head_targets], axis=1)
            # Same fused node as the single-head path (bit-identical to the
            # composed matmul/leaky/reshape); it is also where per-example
            # capture intercepts the attention-vector reduction.
            logits = F.edge_attention_logits(pair, attention, self.negative_slope)
            alpha = F.segment_softmax(logits, segments, num_nodes, sort=sort)
            messages = head_sources * alpha.reshape(-1, 1)
            if weight_column is not None:
                messages = messages * weight_column
            head_outputs.append(
                F.scatter_add_rows(messages, targets, num_nodes, flat_index=flat_index)
            )
        return concat(head_outputs, axis=1)


class GATConv(_AttentionConv):
    """Graph attention with per-target normalisation (Veličković et al.)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        heads: int = 1,
        negative_slope: float = 0.2,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(
            in_features,
            out_features,
            heads=heads,
            negative_slope=negative_slope,
            normalize_over="target",
            rng=rng,
        )


class GRATConv(_AttentionConv):
    """GAT variant normalising attention at the *source* (FastCover's GRAT).

    Normalising over each source's successors means a node whose coverage
    overlaps other influential nodes receives a reduced reward — the
    property the paper credits for GRAT's edge on IM tasks.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        heads: int = 1,
        negative_slope: float = 0.2,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__(
            in_features,
            out_features,
            heads=heads,
            negative_slope=negative_slope,
            normalize_over="source",
            rng=rng,
        )


class GINConv(Module):
    """Graph isomorphism layer: ``MLP((1 + ω)·h_v + Σ_u h_u)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        hidden_features: int | None = None,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        hidden = hidden_features if hidden_features is not None else out_features
        from repro.utils.rng import spawn_rngs

        rng1, rng2 = spawn_rngs(rng, 2)
        self.mlp_in = Linear(in_features, hidden, rng=rng1)
        self.mlp_out = Linear(hidden, out_features, rng=rng2)
        self.epsilon = Parameter(np.zeros(1))  # the learnable ω

    def forward(
        self,
        x: Tensor,
        edge_index: np.ndarray,
        edge_weight: np.ndarray | None = None,
        *,
        plan=None,
    ) -> Tensor:
        num_nodes = x.shape[0]
        aggregated = aggregate_neighbors(
            x, edge_index, num_nodes, edge_weight=edge_weight, plan=plan
        )
        # Fused ``x * (1 + ω)`` node: bit-identical to the composed
        # add/multiply, and the capture-aware site for ω's per-example
        # gradient (``unbroadcast(grad * x)``), which generic interception
        # cannot attribute through the intermediate ``1 + ω`` tensor.
        combined = aggregated + F.scale_rows_one_plus(x, self.epsilon)
        return self.mlp_out(self.mlp_in(combined).relu())
