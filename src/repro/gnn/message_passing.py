"""Edge-indexed message passing primitives.

A graph is presented to the GNN stack as:

* ``edge_index`` — ``(2, E)`` int array, row 0 sources, row 1 targets;
  messages flow source → target (matching the paper's convention that node
  ``u`` aggregates from its influencers ``v ∈ N(u)``, Eq. 1);
* ``edge_weight`` — ``(E,)`` float array of influence probabilities ``w_vu``.

All layers are built from two primitives: gather rows at sources, scatter-add
rows at targets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import functional as F
from repro.nn import kernels
from repro.nn.tensor import Tensor


def _row_width(shape: tuple[int, ...]) -> int:
    """Product of the non-leading dimensions (1 for 1-D shapes)."""
    width = 1
    for dim in shape[1:]:
        width *= dim
    return width


def unit_edge_weights(weights: np.ndarray, plan=None) -> bool:
    """Whether every edge weight is exactly 1.0 (making weighting a no-op).

    When ``weights`` is the plan graph's own weight array the answer comes
    from the graph's cached ``has_unit_weights`` flag; otherwise the array
    is scanned (cheap next to the multiply it can eliminate).
    """
    if plan is not None and weights is plan.edge_weight:
        return plan.graph.has_unit_weights
    return weights.size == 0 or bool(np.all(weights == 1.0))


def check_edge_index(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    """Validate and normalise an edge-index array."""
    array = np.asarray(edge_index, dtype=np.int64)
    if array.ndim != 2 or array.shape[0] != 2:
        raise ShapeError(f"edge_index must have shape (2, E), got {array.shape}")
    if array.size and (array.min() < 0 or array.max() >= num_nodes):
        raise ShapeError("edge_index endpoints out of range")
    return array


def add_self_loops(
    edge_index: np.ndarray,
    edge_weight: np.ndarray,
    num_nodes: int,
    *,
    loop_weight: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Append a self-loop to every node (GCN's renormalisation trick)."""
    loops = np.arange(num_nodes, dtype=np.int64)
    new_index = np.concatenate([edge_index, np.stack([loops, loops])], axis=1)
    new_weight = np.concatenate(
        [np.asarray(edge_weight, dtype=np.float64), np.full(num_nodes, loop_weight)]
    )
    return new_index, new_weight


def aggregate_neighbors(
    x: Tensor,
    edge_index: np.ndarray,
    num_nodes: int,
    *,
    edge_weight: np.ndarray | None = None,
    reduce: str = "sum",
    plan=None,
    plan_key: str = "base",
) -> Tensor:
    """Aggregate source-node features onto targets.

    ``out[v] = reduce_{(u, v) in E} w_uv * x[u]``.

    Args:
        x: ``(N, d)`` node feature tensor.
        edge_index: ``(2, E)`` source/target array.
        num_nodes: N.
        edge_weight: optional ``(E,)`` multiplicative weights.
        reduce: ``"sum"`` or ``"mean"`` (mean divides by in-degree,
            counting only present edges; isolated nodes stay zero).
        plan: optional :class:`repro.core.compute_plan.ComputePlan` holding
            build-once derived data (validated edges, in-degrees, scatter
            indices).  The plan changes nothing numerically — only how
            often the static arrays are rebuilt.
        plan_key: identifies the edge set within the plan.  Callers passing
            anything other than the plan's own edges (e.g. the GCN's
            self-loop-augmented set) must use a distinct key.
    """
    if plan is not None:
        edges = plan.memo(
            ("agg.edges", plan_key), lambda: check_edge_index(edge_index, num_nodes)
        )
    else:
        edges = check_edge_index(edge_index, num_nodes)
    sources, targets = edges[0], edges[1]
    gather_flat = None
    x_width = _row_width(x.shape)
    if (
        plan is not None
        and kernels.kernels_enabled()
        and x.ndim > 1
        and x_width > kernels.COLUMN_WIDTH_THRESHOLD
    ):
        gather_flat = plan.memo(
            ("agg.gather_flat", plan_key, x_width),
            lambda: kernels.flat_scatter_index(sources, x_width),
        )
    messages = x.gather_rows(sources, flat_index=gather_flat)
    if edge_weight is not None:
        weights = np.asarray(edge_weight, dtype=np.float64)
        if weights.shape != (edges.shape[1],):
            raise ShapeError(
                f"edge_weight must have shape ({edges.shape[1]},), got {weights.shape}"
            )
        # Multiplying by an all-ones weight column is an exact no-op
        # (x * 1.0 is bit-identical to x); skipping it removes a forward
        # multiply and its two backward products per aggregation.
        if not unit_edge_weights(weights, plan):
            messages = messages * Tensor(weights.reshape(-1, 1))
    flat_index = None
    width = _row_width(messages.shape)
    if (
        plan is not None
        and kernels.kernels_enabled()
        and messages.ndim > 1
        and width > kernels.COLUMN_WIDTH_THRESHOLD
    ):
        flat_index = plan.memo(
            ("agg.flat", plan_key, width),
            lambda: kernels.flat_scatter_index(targets, width),
        )
    aggregated = F.scatter_add_rows(messages, targets, num_nodes, flat_index=flat_index)
    if reduce == "sum":
        return aggregated
    if reduce == "mean":
        def build_inverse_degree() -> np.ndarray:
            degree = np.bincount(targets, minlength=num_nodes).astype(np.float64)
            degree[degree == 0] = 1.0
            return 1.0 / degree.reshape(-1, 1)

        if plan is not None:
            inverse = plan.memo(("agg.inv_degree", plan_key), build_inverse_degree)
        else:
            inverse = build_inverse_degree()
        return aggregated * Tensor(inverse)
    raise ShapeError(f"reduce must be 'sum' or 'mean', got {reduce!r}")
