"""Edge-indexed message passing primitives.

A graph is presented to the GNN stack as:

* ``edge_index`` — ``(2, E)`` int array, row 0 sources, row 1 targets;
  messages flow source → target (matching the paper's convention that node
  ``u`` aggregates from its influencers ``v ∈ N(u)``, Eq. 1);
* ``edge_weight`` — ``(E,)`` float array of influence probabilities ``w_vu``.

All layers are built from two primitives: gather rows at sources, scatter-add
rows at targets.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import functional as F
from repro.nn.tensor import Tensor


def check_edge_index(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    """Validate and normalise an edge-index array."""
    array = np.asarray(edge_index, dtype=np.int64)
    if array.ndim != 2 or array.shape[0] != 2:
        raise ShapeError(f"edge_index must have shape (2, E), got {array.shape}")
    if array.size and (array.min() < 0 or array.max() >= num_nodes):
        raise ShapeError("edge_index endpoints out of range")
    return array


def add_self_loops(
    edge_index: np.ndarray,
    edge_weight: np.ndarray,
    num_nodes: int,
    *,
    loop_weight: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Append a self-loop to every node (GCN's renormalisation trick)."""
    loops = np.arange(num_nodes, dtype=np.int64)
    new_index = np.concatenate([edge_index, np.stack([loops, loops])], axis=1)
    new_weight = np.concatenate(
        [np.asarray(edge_weight, dtype=np.float64), np.full(num_nodes, loop_weight)]
    )
    return new_index, new_weight


def aggregate_neighbors(
    x: Tensor,
    edge_index: np.ndarray,
    num_nodes: int,
    *,
    edge_weight: np.ndarray | None = None,
    reduce: str = "sum",
) -> Tensor:
    """Aggregate source-node features onto targets.

    ``out[v] = reduce_{(u, v) in E} w_uv * x[u]``.

    Args:
        x: ``(N, d)`` node feature tensor.
        edge_index: ``(2, E)`` source/target array.
        num_nodes: N.
        edge_weight: optional ``(E,)`` multiplicative weights.
        reduce: ``"sum"`` or ``"mean"`` (mean divides by in-degree,
            counting only present edges; isolated nodes stay zero).
    """
    edges = check_edge_index(edge_index, num_nodes)
    sources, targets = edges[0], edges[1]
    messages = x.gather_rows(sources)
    if edge_weight is not None:
        weights = np.asarray(edge_weight, dtype=np.float64)
        if weights.shape != (edges.shape[1],):
            raise ShapeError(
                f"edge_weight must have shape ({edges.shape[1]},), got {weights.shape}"
            )
        messages = messages * Tensor(weights.reshape(-1, 1))
    aggregated = F.scatter_add_rows(messages, targets, num_nodes)
    if reduce == "sum":
        return aggregated
    if reduce == "mean":
        degree = np.bincount(targets, minlength=num_nodes).astype(np.float64)
        degree[degree == 0] = 1.0
        return aggregated * Tensor(1.0 / degree.reshape(-1, 1))
    raise ShapeError(f"reduce must be 'sum' or 'mean', got {reduce!r}")
