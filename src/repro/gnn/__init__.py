"""GNN layers and models (GCN, GraphSAGE, GAT, GRAT, GIN) on the autograd engine."""

from repro.gnn.message_passing import add_self_loops, aggregate_neighbors
from repro.gnn.layers import GATConv, GCNConv, GINConv, GRATConv, SAGEConv
from repro.gnn.models import GNN, GNNConfig, available_models, build_gnn
from repro.gnn.features import degree_features

__all__ = [
    "aggregate_neighbors",
    "add_self_loops",
    "GCNConv",
    "SAGEConv",
    "GATConv",
    "GRATConv",
    "GINConv",
    "GNN",
    "GNNConfig",
    "build_gnn",
    "available_models",
    "degree_features",
]
